//! Theorem 1 (§4.1): divisible makespan minimization in polynomial time.

use crate::instance::Instance;
use crate::lp_build::{build_makespan_lp, pack_alpha_schedule};
use crate::schedule::Schedule;
use dlflow_lp::solve;
use dlflow_num::Scalar;

/// Result of [`min_makespan`].
#[derive(Clone, Debug)]
pub struct MakespanOutcome<S> {
    /// Optimal makespan `C_max = r_max + Δ_n*`.
    pub makespan: S,
    /// A schedule achieving it.
    pub schedule: Schedule<S>,
}

/// Computes the optimal divisible makespan and an achieving schedule by
/// solving Linear Program (1).
///
/// The LP is always feasible (all work can go to the final unbounded
/// interval) and bounded (`Δ_n ≥ 0`), so this cannot fail on a validated
/// [`Instance`].
pub fn min_makespan<S: Scalar>(inst: &Instance<S>) -> MakespanOutcome<S> {
    let built = build_makespan_lp(inst);
    let sol = solve(&built.lp);
    assert!(
        sol.is_optimal(),
        "System (1) must be feasible and bounded on a validated instance (got {:?})",
        sol.status
    );
    let delta = sol.value(built.delta).clone();
    let r_max = inst.max_release();
    let makespan = r_max.add(&delta);

    // Concrete interval bounds: the finite ones, then [r_max, r_max + Δ).
    let mut bounds: Vec<(S, S)> = (0..built.intervals.n_intervals())
        .map(|t| {
            (
                built.intervals.inf(t).clone(),
                built.intervals.sup(t).clone(),
            )
        })
        .collect();
    bounds.push((r_max, makespan.clone()));

    let schedule = pack_alpha_schedule(inst, &bounds, &built.alpha, &sol.values);
    MakespanOutcome { makespan, schedule }
}

/// Simple analytic lower bounds on the divisible makespan, used by tests
/// and the Theorem-1 experiment binary to sanity-check LP optima:
///
/// * every job must finish: `max_j (r_j + min_i c_{i,j})` is **not** a
///   valid bound under divisibility (a job can be spread), but
///   `max_j r_j` is, and so is the *uniform-pool* bound below;
/// * on uniform machines (speeds `s_i = 1/cycle_i`), all the work released
///   up to any instant must fit in the aggregate capacity after it.
///
/// Here we return the weakest universally valid bound for unrelated
/// machines: `max(r_max, max_j (r_j + 1/Σ_i (1/c_{i,j})))` — job `j`
/// processed simultaneously on all of its machines at full speed needs at
/// least the harmonic aggregate of its costs.
pub fn makespan_lower_bound<S: Scalar>(inst: &Instance<S>) -> S {
    let mut bound = inst.max_release();
    for j in 0..inst.n_jobs() {
        let mut rate = S::zero(); // aggregate processing rate 1/c summed
        for i in 0..inst.n_machines() {
            if let Some(c) = inst.cost(i, j).finite() {
                if c.is_negligible() {
                    rate = S::zero();
                    break; // zero-cost: completes instantly
                }
                rate = rate.add(&c.recip());
            }
        }
        if rate.is_positive_tol() {
            let t = inst.job(j).release.add(&rate.recip());
            bound = S::max_val(bound, t);
        }
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::validate::validate;
    use dlflow_num::Rat;

    #[test]
    fn single_job_single_machine() {
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::from_i64(1), Rat::one());
        b.machine(vec![Some(Rat::from_i64(5))]);
        let inst = b.build().unwrap();
        let out = min_makespan(&inst);
        assert_eq!(out.makespan, Rat::from_i64(6));
        validate(&inst, &out.schedule).unwrap();
        assert_eq!(out.schedule.makespan(), Rat::from_i64(6));
    }

    #[test]
    fn two_machines_split_job() {
        // One job, cost 4 on each of two machines → split in half, done at 2.
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one());
        b.machine(vec![Some(Rat::from_i64(4))]);
        b.machine(vec![Some(Rat::from_i64(4))]);
        let inst = b.build().unwrap();
        let out = min_makespan(&inst);
        assert_eq!(out.makespan, Rat::from_i64(2));
        validate(&inst, &out.schedule).unwrap();
    }

    #[test]
    fn heterogeneous_split_matches_harmonic_bound() {
        // Costs 2 and 6: optimal splits work so both finish together:
        // 1/(1/2 + 1/6) = 3/2.
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one());
        b.machine(vec![Some(Rat::from_i64(2))]);
        b.machine(vec![Some(Rat::from_i64(6))]);
        let inst = b.build().unwrap();
        let out = min_makespan(&inst);
        assert_eq!(out.makespan, Rat::from_ratio(3, 2));
        assert_eq!(makespan_lower_bound(&inst), Rat::from_ratio(3, 2));
        validate(&inst, &out.schedule).unwrap();
    }

    #[test]
    fn staggered_releases_use_early_capacity() {
        // M0 only. J1 (r=0, c=4), J2 (r=2, c=4): some of J1 fits before 2.
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one());
        b.job(Rat::from_i64(2), Rat::one());
        b.machine(vec![Some(Rat::from_i64(4)), Some(Rat::from_i64(4))]);
        let inst = b.build().unwrap();
        let out = min_makespan(&inst);
        assert_eq!(out.makespan, Rat::from_i64(8));
        validate(&inst, &out.schedule).unwrap();
    }

    #[test]
    fn restricted_availability_respected() {
        // J1 can only run on the slow machine.
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one());
        b.job(Rat::zero(), Rat::one());
        b.machine(vec![None, Some(Rat::one())]);
        b.machine(vec![Some(Rat::from_i64(10)), None]);
        let inst = b.build().unwrap();
        let out = min_makespan(&inst);
        assert_eq!(out.makespan, Rat::from_i64(10));
        validate(&inst, &out.schedule).unwrap();
    }

    #[test]
    fn lower_bound_never_exceeds_optimum_f64() {
        let mut b = InstanceBuilder::<f64>::new();
        b.job(0.0, 1.0);
        b.job(1.0, 1.0);
        b.job(3.0, 1.0);
        b.machine(vec![Some(5.0), Some(3.0), Some(8.0)]);
        b.machine(vec![Some(2.0), None, Some(4.0)]);
        let inst = b.build().unwrap();
        let out = min_makespan(&inst);
        assert!(makespan_lower_bound(&inst) <= out.makespan + 1e-9);
        validate(&inst, &out.schedule).unwrap();
    }
}
