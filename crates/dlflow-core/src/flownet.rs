//! Maximum-flow substrate (Dinic's algorithm), generic over [`Scalar`].
//!
//! Used by the combinatorial fast path of [`crate::uniform`]: on *uniform
//! machines with restricted availabilities* — the structure the paper
//! shows the GriPPS platform has (§3) — deadline feasibility (System (2))
//! reduces to a transportation problem, so the milestone binary search
//! can probe with a max-flow computation instead of a full LP solve.
//!
//! Dinic's phase count is bounded by the number of nodes regardless of
//! capacities, so the algorithm terminates for exact rational capacities
//! just as it does for floats.

use dlflow_num::Scalar;

/// An edge of the residual network.
#[derive(Clone, Debug)]
struct Edge<S> {
    to: usize,
    cap: S,
    flow: S,
}

/// A flow network with unit-indexed nodes.
#[derive(Clone, Debug)]
pub struct FlowNetwork<S> {
    edges: Vec<Edge<S>>,
    adj: Vec<Vec<usize>>,
}

impl<S: Scalar> FlowNetwork<S> {
    /// A network with `n_nodes` nodes and no edges.
    pub fn new(n_nodes: usize) -> Self {
        FlowNetwork {
            edges: Vec::new(),
            adj: vec![Vec::new(); n_nodes],
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed edge `u → v` with the given capacity; returns its
    /// id (use with [`FlowNetwork::flow_on`]). A residual reverse edge of
    /// capacity 0 is added automatically.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: S) -> usize {
        assert!(!cap.is_negative_tol(), "negative capacity");
        let id = self.edges.len();
        self.edges.push(Edge {
            to: v,
            cap,
            flow: S::zero(),
        });
        self.adj[u].push(id);
        self.edges.push(Edge {
            to: u,
            cap: S::zero(),
            flow: S::zero(),
        });
        self.adj[v].push(id + 1);
        id
    }

    /// Flow currently routed through edge `id`.
    pub fn flow_on(&self, id: usize) -> &S {
        &self.edges[id].flow
    }

    fn residual(&self, id: usize) -> S {
        self.edges[id].cap.sub(&self.edges[id].flow)
    }

    /// Computes the maximum `source → sink` flow (Dinic).
    pub fn max_flow(&mut self, source: usize, sink: usize) -> S {
        assert_ne!(source, sink);
        let n = self.n_nodes();
        let mut total = S::zero();
        loop {
            // BFS: level graph.
            let mut level = vec![u32::MAX; n];
            level[source] = 0;
            let mut queue = vec![source];
            let mut head = 0;
            while head < queue.len() {
                let u = queue[head];
                head += 1;
                for &eid in &self.adj[u] {
                    let v = self.edges[eid].to;
                    if level[v] == u32::MAX && self.residual(eid).is_positive_tol() {
                        level[v] = level[u] + 1;
                        queue.push(v);
                    }
                }
            }
            if level[sink] == u32::MAX {
                return total;
            }
            // DFS blocking flow with iteration pointers.
            let mut it = vec![0usize; n];
            loop {
                let pushed = self.dfs_push(source, sink, None, &level, &mut it);
                match pushed {
                    Some(f) => total = total.add(&f),
                    None => break,
                }
            }
        }
    }

    /// Pushes flow along one admissible path; `limit = None` means
    /// unlimited at the source.
    fn dfs_push(
        &mut self,
        u: usize,
        sink: usize,
        limit: Option<S>,
        level: &[u32],
        it: &mut [usize],
    ) -> Option<S> {
        if u == sink {
            return limit;
        }
        while it[u] < self.adj[u].len() {
            let eid = self.adj[u][it[u]];
            let v = self.edges[eid].to;
            let res = self.residual(eid);
            if level[v] == level[u] + 1 && res.is_positive_tol() {
                let next_limit = match &limit {
                    None => res.clone(),
                    Some(l) => {
                        if l.cmp_total(&res) == std::cmp::Ordering::Less {
                            l.clone()
                        } else {
                            res
                        }
                    }
                };
                if let Some(f) = self.dfs_push(v, sink, Some(next_limit), level, it) {
                    self.edges[eid].flow = self.edges[eid].flow.add(&f);
                    self.edges[eid ^ 1].flow = self.edges[eid ^ 1].flow.sub(&f);
                    return Some(f);
                }
            }
            it[u] += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlflow_num::Rat;

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::<f64>::new(2);
        net.add_edge(0, 1, 5.0);
        assert_eq!(net.max_flow(0, 1), 5.0);
    }

    #[test]
    fn series_takes_bottleneck() {
        let mut net = FlowNetwork::<f64>::new(3);
        net.add_edge(0, 1, 5.0);
        net.add_edge(1, 2, 3.0);
        assert_eq!(net.max_flow(0, 2), 3.0);
    }

    #[test]
    fn parallel_paths_sum() {
        let mut net = FlowNetwork::<f64>::new(4);
        net.add_edge(0, 1, 2.0);
        net.add_edge(1, 3, 2.0);
        net.add_edge(0, 2, 3.0);
        net.add_edge(2, 3, 3.0);
        assert_eq!(net.max_flow(0, 3), 5.0);
    }

    #[test]
    fn classic_augmenting_through_cross_edge() {
        // The textbook 4-node diamond with a cross edge that tempts a
        // greedy router into a suboptimal split.
        let mut net = FlowNetwork::<f64>::new(4);
        net.add_edge(0, 1, 1.0);
        net.add_edge(0, 2, 1.0);
        net.add_edge(1, 2, 1.0);
        net.add_edge(1, 3, 1.0);
        net.add_edge(2, 3, 1.0);
        assert_eq!(net.max_flow(0, 3), 2.0);
    }

    #[test]
    fn disconnected_sink_yields_zero() {
        let mut net = FlowNetwork::<f64>::new(3);
        net.add_edge(0, 1, 4.0);
        assert_eq!(net.max_flow(0, 2), 0.0);
    }

    #[test]
    fn exact_rational_capacities() {
        let mut net = FlowNetwork::<Rat>::new(4);
        net.add_edge(0, 1, Rat::from_ratio(1, 3));
        net.add_edge(1, 3, Rat::from_ratio(1, 2));
        net.add_edge(0, 2, Rat::from_ratio(1, 6));
        net.add_edge(2, 3, Rat::from_ratio(1, 6));
        assert_eq!(net.max_flow(0, 3), Rat::from_ratio(1, 2));
    }

    #[test]
    fn flow_conservation_on_edges() {
        let mut net = FlowNetwork::<Rat>::new(4);
        let e01 = net.add_edge(0, 1, Rat::from_i64(2));
        let e02 = net.add_edge(0, 2, Rat::from_i64(3));
        let e13 = net.add_edge(1, 3, Rat::from_i64(2));
        let e23 = net.add_edge(2, 3, Rat::from_i64(2));
        let f = net.max_flow(0, 3);
        assert_eq!(f, Rat::from_i64(4));
        // Source outflow equals sink inflow equals total.
        let out = net.flow_on(e01).add_ref(net.flow_on(e02));
        let inn = net.flow_on(e13).add_ref(net.flow_on(e23));
        assert_eq!(out, f);
        assert_eq!(inn, f);
    }

    #[test]
    fn bipartite_matching_as_flow() {
        // 3×3 bipartite with unit capacities: perfect matching = flow 3.
        let mut net = FlowNetwork::<f64>::new(8); // 0 src, 1-3 left, 4-6 right, 7 sink
        for l in 1..=3 {
            net.add_edge(0, l, 1.0);
            net.add_edge(l + 3, 7, 1.0);
        }
        net.add_edge(1, 4, 1.0);
        net.add_edge(1, 5, 1.0);
        net.add_edge(2, 5, 1.0);
        net.add_edge(3, 5, 1.0);
        net.add_edge(3, 6, 1.0);
        assert_eq!(net.max_flow(0, 7), 3.0);
    }
}
