//! The item-level front end: parses a lexed token stream into the items
//! the semantic rules need — `fn`s (with body spans), `impl` blocks
//! (type + optional trait), `trait` declarations, inline `mod`s, and the
//! named type-level items (`struct`/`enum`/`trait`/`const`/`static`/
//! `type`/`mod`) that `dead-pub` audits.
//!
//! This is deliberately not a full Rust grammar. It recognizes item
//! *boundaries* well enough to (a) attribute every body token to its
//! enclosing function and (b) name items stably for the symbol table.
//! Anything it does not understand is skipped token-by-token — an
//! unparseable construct can cost precision (a call edge, an item) but
//! never a crash and never a misattributed body.

use crate::lexer::{TokKind, Token};

/// Visibility of an item, as far as the lexical form shows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Vis {
    /// `pub` with no restriction — part of the crate's public API.
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in …)` — visible but scoped.
    PubScoped,
    /// No `pub` at all.
    Private,
}

/// One parsed function (free, impl method, or trait method).
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` type or `trait` name, if any.
    pub owner: Option<String>,
    /// For methods of `impl Trait for Type`: the trait name.
    pub trait_impl: Option<String>,
    /// True for a default body inside a `trait` declaration.
    pub is_trait_default: bool,
    /// Visibility (methods of trait impls are implicitly public but
    /// carry no `pub`; this records the written form only).
    pub vis: Vis,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token range of the body, `open_brace + 1 .. close_brace`
    /// (empty/None for bodyless trait signatures).
    pub body: Option<(usize, usize)>,
    /// Inclusive 1-based line span of the body braces.
    pub body_lines: Option<(usize, usize)>,
    /// Inline-module path within the file (outermost first).
    pub module: Vec<String>,
}

/// What a [`TypeItem`] declares.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TypeKind {
    /// `struct`
    Struct,
    /// `enum`
    Enum,
    /// `trait`
    Trait,
    /// `const`
    Const,
    /// `static`
    Static,
    /// `type` alias
    Alias,
    /// `mod` (inline or file declaration)
    Mod,
}

/// A named non-`fn` item (audited by `dead-pub`).
#[derive(Clone, Debug)]
pub struct TypeItem {
    /// Item kind.
    pub kind: TypeKind,
    /// Item name.
    pub name: String,
    /// Visibility.
    pub vis: Vis,
    /// 1-based line of the declaring keyword.
    pub line: usize,
    /// Inline-module path within the file.
    pub module: Vec<String>,
}

/// Every item parsed out of one file.
#[derive(Clone, Debug, Default)]
pub struct FileItems {
    /// Functions, in source order.
    pub fns: Vec<FnItem>,
    /// Named type-level items, in source order.
    pub types: Vec<TypeItem>,
}

impl FileItems {
    /// The function whose body covers `line`, if any. Inner functions
    /// shadow outer ones (the parser emits them after their parent, and
    /// later matches win ties on narrower spans).
    pub fn fn_covering_line(&self, line: usize) -> Option<&FnItem> {
        let mut best: Option<&FnItem> = None;
        for f in &self.fns {
            let Some((lo, hi)) = f.body_lines else {
                continue;
            };
            // The signature line belongs to the fn too.
            let lo = lo.min(f.line);
            if lo <= line && line <= hi {
                let narrower = best.is_none_or(|b| {
                    let (blo, bhi) = b.body_lines.unwrap_or((0, usize::MAX));
                    hi - lo <= bhi - blo.min(b.line)
                });
                if narrower {
                    best = Some(f);
                }
            }
        }
        best
    }
}

/// Parses `toks` into items. `mask[i]` marks tokens inside
/// `#[cfg(test)] mod` spans — items fully inside the mask are skipped
/// (test code is out of scope for every rule).
pub fn parse_items(toks: &[Token], mask: &[bool]) -> FileItems {
    let mut out = FileItems::default();
    let mut p = Parser {
        toks,
        mask,
        out: &mut out,
    };
    let len = toks.len();
    p.items(0, len, &mut Vec::new(), Ctx::TopLevel);
    out
}

/// Where an item list is being parsed.
#[derive(Clone, Debug)]
enum Ctx {
    /// File top level or an inline `mod` body.
    TopLevel,
    /// Inside `impl Type { … }` / `impl Trait for Type { … }`.
    Impl {
        type_name: String,
        trait_name: Option<String>,
    },
    /// Inside `trait Name { … }`.
    Trait { name: String },
}

struct Parser<'a> {
    toks: &'a [Token],
    mask: &'a [bool],
    out: &'a mut FileItems,
}

impl Parser<'_> {
    fn text(&self, i: usize) -> &str {
        self.toks.get(i).map_or("", |t| t.text.as_str())
    }

    fn is_ident(&self, i: usize) -> bool {
        self.toks.get(i).is_some_and(|t| t.kind == TokKind::Ident)
    }

    /// Index just past the `]` of an attribute starting at `#`.
    fn skip_attr(&self, i: usize) -> usize {
        let mut k = i + 1; // past `#`
        if self.text(k) == "!" {
            k += 1;
        }
        if self.text(k) != "[" {
            return i + 1;
        }
        let mut depth = 0usize;
        while k < self.toks.len() {
            match self.text(k) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return k + 1;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        k
    }

    /// Index just past the brace matching the `{` at `open` (clamped to
    /// `to`).
    fn match_brace(&self, open: usize, to: usize) -> usize {
        let mut depth = 0usize;
        let mut k = open;
        while k < to {
            match self.text(k) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return k + 1;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        to
    }

    /// Parses the item list in `[from, to)`.
    fn items(&mut self, from: usize, to: usize, module: &mut Vec<String>, ctx: Ctx) {
        let mut i = from;
        while i < to {
            if self.mask[i] {
                i += 1;
                continue;
            }
            let t = &self.toks[i];
            if t.kind != TokKind::Ident && t.text != "#" {
                // A stray opening brace is skipped as a block so that a
                // misparse cannot cascade into later items.
                if t.text == "{" {
                    i = self.match_brace(i, to);
                } else {
                    i += 1;
                }
                continue;
            }
            if t.text == "#" {
                i = self.skip_attr(i);
                continue;
            }

            // Visibility + modifier prefix.
            let item_line = t.line;
            let mut k = i;
            let mut vis = Vis::Private;
            if self.text(k) == "pub" {
                vis = Vis::Pub;
                k += 1;
                if self.text(k) == "(" {
                    vis = Vis::PubScoped;
                    let mut depth = 0usize;
                    while k < to {
                        match self.text(k) {
                            "(" => depth += 1,
                            ")" => {
                                depth -= 1;
                                if depth == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
            }
            while matches!(self.text(k), "unsafe" | "async" | "extern" | "default") {
                k += 1;
                if self.text(k - 1) == "extern"
                    && self.toks.get(k).is_some_and(|t| t.kind == TokKind::Literal)
                {
                    k += 1; // ABI string
                }
            }
            // `const` is both a modifier (`const fn`) and an item.
            if self.text(k) == "const" && self.text(k + 1) == "fn" {
                k += 1;
            }

            match self.text(k) {
                "fn" => {
                    i = self.parse_fn(k, to, vis, item_line, module, &ctx);
                }
                "mod" if self.is_ident(k + 1) => {
                    let name = self.text(k + 1).to_string();
                    self.out.types.push(TypeItem {
                        kind: TypeKind::Mod,
                        name: name.clone(),
                        vis,
                        line: item_line,
                        module: module.clone(),
                    });
                    if self.text(k + 2) == "{" {
                        let close = self.match_brace(k + 2, to);
                        module.push(name);
                        self.items(k + 3, close.saturating_sub(1), module, Ctx::TopLevel);
                        module.pop();
                        i = close;
                    } else {
                        i = k + 2; // `mod name;`
                    }
                }
                "impl" => {
                    i = self.parse_impl(k, to, module);
                }
                "trait" if self.is_ident(k + 1) => {
                    let name = self.text(k + 1).to_string();
                    self.out.types.push(TypeItem {
                        kind: TypeKind::Trait,
                        name: name.clone(),
                        vis,
                        line: item_line,
                        module: module.clone(),
                    });
                    let Some(open) = (k..to).find(|&j| self.text(j) == "{") else {
                        i = k + 2;
                        continue;
                    };
                    let close = self.match_brace(open, to);
                    self.items(
                        open + 1,
                        close.saturating_sub(1),
                        module,
                        Ctx::Trait { name },
                    );
                    i = close;
                }
                kw @ ("struct" | "enum" | "const" | "static" | "type") if self.is_ident(k + 1) => {
                    let kind = match kw {
                        "struct" => TypeKind::Struct,
                        "enum" => TypeKind::Enum,
                        "const" => TypeKind::Const,
                        "static" => TypeKind::Static,
                        _ => TypeKind::Alias,
                    };
                    self.out.types.push(TypeItem {
                        kind,
                        name: self.text(k + 1).to_string(),
                        vis,
                        line: item_line,
                        module: module.clone(),
                    });
                    // Body: to the first of `;` or a matched `{ … }`.
                    let mut j = k + 2;
                    while j < to {
                        match self.text(j) {
                            ";" => {
                                j += 1;
                                break;
                            }
                            "{" => {
                                j = self.match_brace(j, to);
                                break;
                            }
                            _ => j += 1,
                        }
                    }
                    i = j;
                }
                "use" | "macro_rules" => {
                    // `use path::…;` / `macro_rules! name { … }`
                    let mut j = k + 1;
                    while j < to {
                        match self.text(j) {
                            ";" => {
                                j += 1;
                                break;
                            }
                            "{" => {
                                j = self.match_brace(j, to);
                                if self.text(k) == "macro_rules" {
                                    break;
                                }
                            }
                            _ => j += 1,
                        }
                    }
                    i = j;
                }
                _ => {
                    i = k.max(i) + 1;
                }
            }
        }
    }

    /// Parses one `fn` starting at the `fn` keyword; returns the index
    /// just past the item.
    fn parse_fn(
        &mut self,
        fn_kw: usize,
        to: usize,
        vis: Vis,
        line: usize,
        module: &[String],
        ctx: &Ctx,
    ) -> usize {
        if !self.is_ident(fn_kw + 1) {
            return fn_kw + 1;
        }
        let name = self.text(fn_kw + 1).to_string();
        // Body opens at the first `{` before any `;` (a `;` first means
        // a bodyless trait signature).
        let mut j = fn_kw + 2;
        let mut open = None;
        while j < to {
            match self.text(j) {
                "{" => {
                    open = Some(j);
                    break;
                }
                ";" => break,
                _ => j += 1,
            }
        }
        let (owner, trait_impl, is_trait_default) = match ctx {
            Ctx::TopLevel => (None, None, false),
            Ctx::Impl {
                type_name,
                trait_name,
            } => (Some(type_name.clone()), trait_name.clone(), false),
            Ctx::Trait { name } => (Some(name.clone()), None, open.is_some()),
        };
        let (body, body_lines, next) = match open {
            Some(open) => {
                let close = self.match_brace(open, to);
                let span = (open + 1, close.saturating_sub(1));
                let lines = (
                    self.toks[open].line,
                    self.toks
                        .get(close.saturating_sub(1))
                        .map_or(self.toks[open].line, |t| t.line),
                );
                (Some(span), Some(lines), close)
            }
            None => (None, None, j + 1),
        };
        self.out.fns.push(FnItem {
            name,
            owner,
            trait_impl,
            is_trait_default,
            vis,
            line,
            body,
            body_lines,
            module: module.to_vec(),
        });
        // Inner `fn`s (rare) are parsed too, so their bodies are known;
        // they shadow the outer span in `fn_covering_line`.
        if let Some((lo, hi)) = body {
            let mut k = lo;
            while k < hi {
                if self.text(k) == "fn" && self.is_ident(k + 1) && !self.mask[k] {
                    k = self.parse_fn(
                        k,
                        hi,
                        Vis::Private,
                        self.toks[k].line,
                        module,
                        &Ctx::TopLevel,
                    );
                } else {
                    k += 1;
                }
            }
        }
        next
    }

    /// Parses one `impl` block starting at the `impl` keyword.
    fn parse_impl(&mut self, impl_kw: usize, to: usize, module: &mut Vec<String>) -> usize {
        // Head = tokens between `impl` and its `{`.
        let Some(open) = (impl_kw..to).find(|&j| self.text(j) == "{") else {
            return impl_kw + 1;
        };
        let close = self.match_brace(open, to);
        let head: &[Token] = &self.toks[impl_kw + 1..open];

        // Split at a depth-0 `for` (trait impl) if present; the *type*
        // name is the first depth-0 ident of the type part (skipping
        // `&`, `mut`, `dyn`, lifetimes), the *trait* name the last
        // depth-0 path segment of the trait part.
        let mut depth = 0i32;
        let mut for_pos = None;
        for (idx, t) in head.iter().enumerate() {
            match t.text.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                "for" if depth == 0 && t.kind == TokKind::Ident => {
                    for_pos = Some(idx);
                    break;
                }
                _ => {}
            }
        }
        let (trait_part, type_part) = match for_pos {
            Some(p) => (Some(&head[..p]), &head[p + 1..]),
            None => (None, head),
        };
        let trait_name = trait_part.and_then(|part| {
            let mut depth = 0i32;
            let mut last = None;
            for t in part {
                match t.text.as_str() {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    _ if depth == 0 && t.kind == TokKind::Ident && t.text != "where" => {
                        last = Some(t.text.clone());
                    }
                    _ => {}
                }
            }
            last
        });
        let mut depth = 0i32;
        let mut type_name = None;
        for t in type_part {
            match t.text.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                "mut" | "dyn" => {}
                _ if depth == 0 && t.kind == TokKind::Ident => {
                    type_name = Some(t.text.clone());
                    break;
                }
                _ => {}
            }
        }
        let Some(type_name) = type_name else {
            return close;
        };
        self.items(
            open + 1,
            close.saturating_sub(1),
            module,
            Ctx::Impl {
                type_name,
                trait_name,
            },
        );
        close
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask;

    fn parse(src: &str) -> FileItems {
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        parse_items(&lexed.tokens, &mask)
    }

    #[test]
    fn free_fns_and_visibility() {
        let items = parse("pub fn a() {} fn b() {} pub(crate) fn c() {}");
        let names: Vec<_> = items.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert_eq!(items.fns[0].vis, Vis::Pub);
        assert_eq!(items.fns[1].vis, Vis::Private);
        assert_eq!(items.fns[2].vis, Vis::PubScoped);
        assert!(items.fns.iter().all(|f| f.owner.is_none()));
    }

    #[test]
    fn impl_methods_carry_type_and_trait() {
        let src = "
struct Engine;
impl Engine {
    pub fn step(&mut self) {}
}
impl<S: Scalar> OnlineScheduler for Mct<S> {
    fn plan(&mut self) {}
}
";
        let items = parse(src);
        let step = items.fns.iter().find(|f| f.name == "step").unwrap();
        assert_eq!(step.owner.as_deref(), Some("Engine"));
        assert_eq!(step.trait_impl, None);
        let plan = items.fns.iter().find(|f| f.name == "plan").unwrap();
        assert_eq!(plan.owner.as_deref(), Some("Mct"));
        assert_eq!(plan.trait_impl.as_deref(), Some("OnlineScheduler"));
    }

    #[test]
    fn trait_decl_distinguishes_required_and_default() {
        let src = "
pub trait OnlineScheduler {
    fn name(&self) -> String;
    fn on_arrival(&mut self, now: f64) {}
    fn plan(&mut self) -> Allocation;
}
";
        let items = parse(src);
        let name = items.fns.iter().find(|f| f.name == "name").unwrap();
        assert!(!name.is_trait_default && name.body.is_none());
        let arr = items.fns.iter().find(|f| f.name == "on_arrival").unwrap();
        assert!(arr.is_trait_default && arr.body.is_some());
        assert_eq!(arr.owner.as_deref(), Some("OnlineScheduler"));
        let t = items.types.iter().find(|t| t.name == "OnlineScheduler");
        assert_eq!(t.unwrap().kind, TypeKind::Trait);
    }

    #[test]
    fn inline_mods_nest_and_name_items() {
        let src = "
mod outer {
    pub mod inner {
        pub fn deep() {}
    }
    pub struct S;
}
pub const LIMIT: usize = 4;
";
        let items = parse(src);
        let deep = items.fns.iter().find(|f| f.name == "deep").unwrap();
        assert_eq!(deep.module, ["outer", "inner"]);
        let s = items.types.iter().find(|t| t.name == "S").unwrap();
        assert_eq!(
            (s.kind, &s.module[..]),
            (TypeKind::Struct, &["outer".to_string()][..])
        );
        assert!(items
            .types
            .iter()
            .any(|t| t.name == "LIMIT" && t.kind == TypeKind::Const));
    }

    #[test]
    fn cfg_test_items_are_masked_out() {
        let src = "
fn live() {}
#[cfg(test)]
mod tests {
    fn dead() {}
}
";
        let items = parse(src);
        assert!(items.fns.iter().any(|f| f.name == "live"));
        assert!(!items.fns.iter().any(|f| f.name == "dead"));
    }

    #[test]
    fn body_spans_cover_lines() {
        let src = "fn a() {\n    inner();\n}\nfn b() {}\n";
        let items = parse(src);
        let a = items.fns.iter().find(|f| f.name == "a").unwrap();
        assert_eq!(a.body_lines, Some((1, 3)));
        assert_eq!(items.fn_covering_line(2).unwrap().name, "a");
        assert_eq!(items.fn_covering_line(4).unwrap().name, "b");
        assert!(items.fn_covering_line(99).is_none());
    }

    #[test]
    fn struct_bodies_do_not_swallow_following_items() {
        let src = "
pub struct A { pub x: usize }
pub enum E { V1, V2 }
pub type T = A;
pub fn after() {}
";
        let items = parse(src);
        assert!(items.fns.iter().any(|f| f.name == "after"));
        assert_eq!(items.types.len(), 3);
    }
}
