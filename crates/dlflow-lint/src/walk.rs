//! Deterministic workspace walk: collects every `.rs` file under the
//! root, skipping build output (`target`), vendored shims (`vendor` —
//! stand-ins for external crates, not dlflow code), version control, and
//! lint fixtures (`testdata` — intentionally-bad sources).

use std::path::Path;

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".claude", "testdata"];

/// Returns workspace-relative paths (forward slashes) of every `.rs`
/// file under `root`, sorted — the scan order, and therefore every
/// report, is byte-deterministic.
pub fn rust_files(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(relative(root, &path));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// `path` relative to `root`, rendered with forward slashes.
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_own_crate_but_skips_testdata() {
        // The dlflow-lint crate dir itself is a convenient fixture tree:
        // src/ holds real sources, testdata/ holds intentionally-bad ones.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = rust_files(root).unwrap();
        assert!(files.iter().any(|f| f == "src/lexer.rs"));
        assert!(files.iter().all(|f| !f.starts_with("testdata/")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "scan order must be deterministic");
    }
}
