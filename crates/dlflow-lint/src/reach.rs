//! Reachability over the call graph, with witness chains.
//!
//! A breadth-first traversal from a set of root functions computes, for
//! every function, whether it is reachable at all (*hot*) and whether
//! it is reachable through at least one call site that sits inside a
//! loop (*loop context* — per-event cost multiplied by iteration
//! count). BFS parents are recorded so every finding can carry a
//! shortest witness chain: `Engine::step → settle_completions → …`.
//!
//! Determinism: roots are visited in sorted order and edges in body
//! order, so the parent tree — and therefore every rendered chain — is
//! a pure function of the (sorted) source tree.

use crate::graph::{FnId, Graph};
use std::collections::VecDeque;

/// Reachability result over one root set.
#[derive(Debug)]
pub struct Reach {
    /// `visited[fn * 2 + ctx]`: reached with (`ctx` = 1) or without a
    /// loop-crossing path.
    visited: Vec<bool>,
    /// BFS parent per state: `(parent_state, call_line)`.
    parent: Vec<Option<(usize, usize)>>,
}

impl Reach {
    /// BFS from `roots` (deduplicated, visited in sorted order).
    pub fn compute(graph: &Graph, roots: &[FnId]) -> Reach {
        let n = graph.fns.len();
        let mut r = Reach {
            visited: vec![false; n * 2],
            parent: vec![None; n * 2],
        };
        let mut sorted: Vec<FnId> = roots.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut queue = VecDeque::new();
        for root in sorted {
            let s = root * 2;
            if !r.visited[s] {
                r.visited[s] = true;
                queue.push_back(s);
            }
        }
        while let Some(state) = queue.pop_front() {
            let (f, ctx) = (state / 2, state % 2 == 1);
            for e in &graph.edges[f] {
                let nctx = ctx || e.in_loop;
                let ns = e.callee * 2 + usize::from(nctx);
                if !r.visited[ns] {
                    r.visited[ns] = true;
                    r.parent[ns] = Some((state, e.line));
                    queue.push_back(ns);
                }
            }
        }
        r
    }

    /// Reachable from some root at all.
    pub fn is_hot(&self, f: FnId) -> bool {
        self.visited[f * 2] || self.visited[f * 2 + 1]
    }

    /// Reachable through a call site inside a loop.
    pub fn in_loop_ctx(&self, f: FnId) -> bool {
        self.visited[f * 2 + 1]
    }

    /// Witness chain of display names from a root to `f` (inclusive).
    /// With `want_loop_ctx`, the chain that establishes loop context is
    /// preferred. Empty if `f` is unreachable.
    pub fn chain(&self, graph: &Graph, f: FnId, want_loop_ctx: bool) -> Vec<String> {
        let state = if want_loop_ctx && self.visited[f * 2 + 1] {
            f * 2 + 1
        } else if self.visited[f * 2] {
            f * 2
        } else if self.visited[f * 2 + 1] {
            f * 2 + 1
        } else {
            return Vec::new();
        };
        let mut names = Vec::new();
        let mut cur = state;
        loop {
            names.push(graph.fns[cur / 2].display());
            match self.parent[cur] {
                Some((prev, _)) => cur = prev,
                None => break,
            }
        }
        names.reverse();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Graph, GraphFile};
    use crate::items::parse_items;
    use crate::lexer::lex;
    use crate::rules::test_mask;

    fn graph_of(files: &[(&str, &str)]) -> Graph {
        let owned: Vec<_> = files
            .iter()
            .map(|(path, src)| {
                let lexed = lex(src);
                let mask = test_mask(&lexed.tokens);
                let items = parse_items(&lexed.tokens, &mask);
                (path.to_string(), lexed.tokens, mask, items)
            })
            .collect();
        let gf: Vec<GraphFile<'_>> = owned
            .iter()
            .enumerate()
            .map(|(i, (path, tokens, mask, items))| GraphFile {
                path,
                file_idx: i,
                tokens,
                mask,
                items,
            })
            .collect();
        Graph::build(&gf)
    }

    #[test]
    fn transitive_reach_with_chain() {
        let g = graph_of(&[
            (
                "crates/dlflow-sim/src/engine.rs",
                "impl Engine { pub fn step(&mut self) { self.settle(); } fn settle(&mut self) { helper(); } }
                 fn helper() {} fn cold() {}",
            ),
        ]);
        let roots = g.find(|f| f.item.name == "step");
        let r = Reach::compute(&g, &roots);
        let helper = g.find(|f| f.item.name == "helper")[0];
        let cold = g.find(|f| f.item.name == "cold")[0];
        assert!(r.is_hot(helper));
        assert!(!r.is_hot(cold));
        assert_eq!(
            r.chain(&g, helper, false),
            ["Engine::step", "Engine::settle", "helper"]
        );
    }

    #[test]
    fn loop_context_propagates_through_edges() {
        let g = graph_of(&[(
            "crates/dlflow-sim/src/engine.rs",
            "fn step() { for x in xs { looped(); } direct(); }
             fn looped() { deep(); } fn deep() {} fn direct() {}",
        )]);
        let roots = g.find(|f| f.item.name == "step");
        let r = Reach::compute(&g, &roots);
        let deep = g.find(|f| f.item.name == "deep")[0];
        let direct = g.find(|f| f.item.name == "direct")[0];
        assert!(r.in_loop_ctx(deep), "loop context is transitive");
        assert!(r.is_hot(direct) && !r.in_loop_ctx(direct));
    }
}
