//! A small Rust lexer: strips comments and string/char literals, keeps
//! line numbers, and surfaces `dlflint:` pragmas found in line comments.
//!
//! This is not a full Rust grammar — it recognizes exactly what the rule
//! engine needs: identifiers, integer vs float literals, lifetimes, and
//! punctuation (with the handful of two-character operators the rules
//! inspect: `==`, `!=`, `::`). Everything inside comments and literals is
//! removed before any rule runs, so a `HashMap` mentioned in a doc
//! comment or an error message can never produce a finding.

/// What a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `as`, …).
    Ident,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2e-9`, `3f64`).
    Float,
    /// A string, char, or byte literal (contents discarded).
    Literal,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation; `==`, `!=` and `::` are kept as single tokens.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Token text (empty for [`TokKind::Literal`]).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

/// An inline `dlflint:allow(rule, "reason")` pragma lifted from a line
/// comment. A pragma trailing code applies to its own line; a pragma on
/// a line of its own applies to the next line.
#[derive(Clone, Debug)]
pub struct Pragma {
    /// The rule name between the parentheses (may be unknown — the
    /// runner reports that as a `bad-pragma` finding).
    pub rule: String,
    /// The quoted justification, if one was given.
    pub reason: Option<String>,
    /// 1-based line of the comment.
    pub line: usize,
    /// True when the comment shares its line with code (trailing form).
    pub trailing: bool,
    /// Parse error for malformed pragmas (reported as `bad-pragma`).
    pub error: Option<String>,
}

impl Pragma {
    /// The 1-based source line this pragma suppresses findings on.
    pub fn applies_to_line(&self) -> usize {
        if self.trailing {
            self.line
        } else {
            self.line + 1
        }
    }
}

/// A lexed source file: the token stream plus any pragmas found.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Pragmas in source order.
    pub pragmas: Vec<Pragma>,
}

/// Lexes `src`, stripping comments and literals. Never fails: unknown
/// bytes become single-character punctuation, and an unterminated
/// comment or literal simply ends the file.
pub fn lex(src: &str) -> LexedFile {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    /// Whether a token has already been emitted on the current line
    /// (distinguishes trailing pragmas from own-line pragmas).
    code_on_line: bool,
    out: LexedFile,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            code_on_line: false,
            out: LexedFile::default(),
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        *self.bytes.get(self.pos + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.code_on_line = false;
        }
        b
    }

    fn push(&mut self, kind: TokKind, text: String, line: usize) {
        self.code_on_line = true;
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> LexedFile {
        while self.pos < self.bytes.len() {
            let b = self.peek(0);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'r' if self.peek(1) == b'"' || self.peek(1) == b'#' => {
                    if !self.raw_string(0) {
                        self.ident();
                    }
                }
                b'b' if self.peek(1) == b'"' || self.peek(1) == b'\'' => {
                    let line = self.line;
                    self.bump(); // `b`
                    let marker = if self.peek(0) == b'"' {
                        self.quoted_string();
                        "\""
                    } else {
                        self.char_literal();
                        "'"
                    };
                    self.push(TokKind::Literal, marker.to_string(), line);
                }
                b'b' if self.peek(1) == b'r' && (self.peek(2) == b'"' || self.peek(2) == b'#') => {
                    if !self.raw_string(1) {
                        self.ident();
                    }
                }
                b'"' => {
                    let line = self.line;
                    self.quoted_string();
                    self.push(TokKind::Literal, "\"".to_string(), line);
                }
                b'\'' => self.quote(),
                b'0'..=b'9' => self.number(),
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => self.ident(),
                _ => self.punct(),
            }
        }
        self.out
    }

    /// Consumes a `//` comment to end of line; recognizes pragmas.
    fn line_comment(&mut self) {
        let line = self.line;
        let trailing = self.code_on_line;
        let start = self.pos;
        while self.pos < self.bytes.len() && self.peek(0) != b'\n' {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        // Strip `//`, `///`, `//!` markers; a pragma must *lead* the
        // comment so that prose merely mentioning the syntax is inert.
        let body = text.trim_start_matches(['/', '!']).trim_start();
        if let Some(rest) = body.strip_prefix("dlflint:") {
            self.out.pragmas.push(parse_pragma(rest, line, trailing));
        }
    }

    /// Consumes a (possibly nested) `/* … */` comment.
    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                self.bump();
                self.bump();
                depth += 1;
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                self.bump();
                self.bump();
                depth -= 1;
            } else {
                self.bump();
            }
        }
    }

    /// Consumes `r"…"` / `r#"…"#` (after `prefix_len` bytes of `b`).
    /// Returns false if this is not actually a raw string (e.g. the
    /// identifier `r#union`), leaving the position untouched.
    fn raw_string(&mut self, prefix_len: usize) -> bool {
        let mut k = prefix_len + 1; // past `r`
        let mut hashes = 0usize;
        while self.peek(k) == b'#' {
            hashes += 1;
            k += 1;
        }
        if self.peek(k) != b'"' {
            return false;
        }
        let line = self.line;
        for _ in 0..=k {
            self.bump(); // prefix, hashes, opening quote
        }
        loop {
            if self.pos >= self.bytes.len() {
                break;
            }
            if self.peek(0) == b'"' {
                let mut ok = true;
                for h in 0..hashes {
                    if self.peek(1 + h) != b'#' {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..=hashes {
                        self.bump();
                    }
                    break;
                }
            }
            self.bump();
        }
        self.push(TokKind::Literal, "\"".to_string(), line);
        true
    }

    /// Consumes a `"…"` string with escapes (opening quote included).
    fn quoted_string(&mut self) {
        self.bump(); // opening `"`
        while self.pos < self.bytes.len() {
            match self.bump() {
                b'\\' => {
                    self.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
    }

    /// Consumes a `'…'` char literal (opening quote already current).
    fn char_literal(&mut self) {
        self.bump(); // opening `'`
        if self.peek(0) == b'\\' {
            self.bump();
            self.bump();
        } else {
            self.bump();
        }
        if self.peek(0) == b'\'' {
            self.bump();
        }
    }

    /// `'` starts either a lifetime or a char literal.
    fn quote(&mut self) {
        let line = self.line;
        let c1 = self.peek(1);
        let ident_start = c1 == b'_' || c1.is_ascii_alphabetic();
        // `'a'` is a char; `'a` followed by non-quote is a lifetime.
        if ident_start && self.peek(2) != b'\'' {
            self.bump(); // `'`
            let start = self.pos;
            while matches!(self.peek(0), b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9') {
                self.bump();
            }
            let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
            self.push(TokKind::Lifetime, text, line);
        } else {
            self.char_literal();
            self.push(TokKind::Literal, "'".to_string(), line);
        }
    }

    /// Consumes a numeric literal, classifying int vs float.
    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        let mut is_float = false;
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'X' | b'o' | b'O' | b'b' | b'B') {
            self.bump();
            self.bump();
            while matches!(self.peek(0), b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F' | b'_') {
                self.bump();
            }
        } else {
            while matches!(self.peek(0), b'0'..=b'9' | b'_') {
                self.bump();
            }
            // Fraction: a `.` followed by a digit (so `1.max(…)` and the
            // range `1..n` stay integers).
            if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
                is_float = true;
                self.bump();
                while matches!(self.peek(0), b'0'..=b'9' | b'_') {
                    self.bump();
                }
            } else if self.peek(0) == b'.'
                && !matches!(self.peek(1), b'.' | b'_' | b'a'..=b'z' | b'A'..=b'Z')
            {
                // Trailing-dot float `1.`
                is_float = true;
                self.bump();
            }
            // Exponent.
            if matches!(self.peek(0), b'e' | b'E') {
                let (s1, s2) = (self.peek(1), self.peek(2));
                if s1.is_ascii_digit() || ((s1 == b'+' || s1 == b'-') && s2.is_ascii_digit()) {
                    is_float = true;
                    self.bump();
                    self.bump();
                    while matches!(self.peek(0), b'0'..=b'9' | b'_') {
                        self.bump();
                    }
                }
            }
        }
        // Type suffix (`u64`, `f32`, …).
        let suffix_start = self.pos;
        while matches!(self.peek(0), b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9') {
            self.bump();
        }
        let suffix = &self.bytes[suffix_start..self.pos];
        if suffix == b"f32" || suffix == b"f64" {
            is_float = true;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        let kind = if is_float {
            TokKind::Float
        } else {
            TokKind::Int
        };
        self.push(kind, text, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.pos;
        while matches!(self.peek(0), b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9') {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(TokKind::Ident, text, line);
    }

    fn punct(&mut self) {
        let line = self.line;
        let b = self.bump();
        let two = matches!(
            (b, self.peek(0)),
            (b'=', b'=') | (b'!', b'=') | (b':', b':')
        );
        let text = if two {
            let c = self.bump();
            format!("{}{}", b as char, c as char)
        } else {
            (b as char).to_string()
        };
        self.push(TokKind::Punct, text, line);
    }
}

/// Parses the remainder of a `dlflint:` comment into a [`Pragma`].
/// Expected shape: `allow(rule-name, "reason")`.
fn parse_pragma(rest: &str, line: usize, trailing: bool) -> Pragma {
    let bad = |error: &str| Pragma {
        rule: String::new(),
        reason: None,
        line,
        trailing,
        error: Some(error.to_string()),
    };
    let Some(args) = rest.trim_start().strip_prefix("allow") else {
        return bad("expected `dlflint:allow(rule, \"reason\")`");
    };
    let args = args.trim_start();
    let Some(args) = args.strip_prefix('(') else {
        return bad("expected `(rule, \"reason\")` after `dlflint:allow`");
    };
    let (rule, reason_part) = match args.split_once(',') {
        Some((r, rest)) => (r.trim(), Some(rest)),
        None => (args.split(')').next().unwrap_or(args).trim(), None),
    };
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
        return bad("pragma rule name must be a kebab-case identifier");
    }
    let Some(reason_part) = reason_part else {
        return bad("pragma requires a reason: `dlflint:allow(rule, \"why\")`");
    };
    // The reason is parsed as a quoted string *before* looking for the
    // closing paren, so justifications may freely contain `(`/`)` — e.g.
    // "fract() == 0.0 is exact".
    let Some((reason, after)) = reason_part
        .trim_start()
        .strip_prefix('"')
        .and_then(|r| r.split_once('"'))
    else {
        return bad("pragma reason must be a non-empty quoted string");
    };
    if reason.trim().is_empty() {
        return bad("pragma reason must be a non-empty quoted string");
    }
    if !after.trim_start().starts_with(')') {
        return bad("expected `)` after the pragma reason");
    }
    Pragma {
        rule: rule.to_string(),
        reason: Some(reason.to_string()),
        line,
        trailing,
        error: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_and_strings_are_stripped() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in /* a nested */ block */
            let s = "HashMap in a string";
            let r = r#"HashMap raw "quoted" here"#;
            let c = 'H';
            real_ident
        "##;
        let toks = kinds(src);
        assert!(!toks.iter().any(|(_, t)| t == "HashMap"));
        assert!(toks.iter().any(|(_, t)| t == "real_ident"));
        let lits = toks.iter().filter(|(k, _)| *k == TokKind::Literal).count();
        assert_eq!(lits, 3); // two strings + one char
    }

    #[test]
    fn float_vs_int_classification() {
        for (src, want) in [
            ("1.0", TokKind::Float),
            ("2e-9", TokKind::Float),
            ("3f64", TokKind::Float),
            ("0.5", TokKind::Float),
            ("1_000.25", TokKind::Float),
            ("42", TokKind::Int),
            ("0xFF", TokKind::Int),
            ("7u64", TokKind::Int),
        ] {
            let toks = kinds(src);
            assert_eq!(toks[0].0, want, "{src}");
        }
        // `1.max(2)` keeps the int and the method call separate.
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokKind::Int, "1".to_string()));
        assert_eq!(toks[2], (TokKind::Ident, "max".to_string()));
        // Ranges stay integral.
        let toks = kinds("0..10");
        assert_eq!(toks[0].0, TokKind::Int);
        assert_eq!(toks[3].0, TokKind::Int);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Literal));
    }

    #[test]
    fn compound_operators_are_single_tokens() {
        let toks = kinds("a == b != c::d");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "::"]);
        // `<=` must not produce a stray `==`.
        let toks = kinds("a <= b");
        assert!(!toks.iter().any(|(_, t)| t == "=="));
    }

    #[test]
    fn line_numbers_are_tracked() {
        let toks = lex("a\nb\n\nc").tokens;
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn pragmas_are_lifted_from_line_comments() {
        let src = "\
let x = 1; // dlflint:allow(float-eq, \"exact by construction\")
// dlflint:allow(lossy-cast, \"bounded above\")
let y = 2;
";
        let lexed = lex(src);
        assert_eq!(lexed.pragmas.len(), 2);
        let p0 = &lexed.pragmas[0];
        assert_eq!(p0.rule, "float-eq");
        assert!(p0.trailing);
        assert_eq!(p0.applies_to_line(), 1);
        assert_eq!(p0.reason.as_deref(), Some("exact by construction"));
        let p1 = &lexed.pragmas[1];
        assert_eq!(p1.rule, "lossy-cast");
        assert!(!p1.trailing);
        assert_eq!(p1.applies_to_line(), 3);
    }

    #[test]
    fn malformed_pragmas_carry_errors() {
        let missing_reason = lex("// dlflint:allow(float-eq)");
        assert!(missing_reason.pragmas[0].error.is_some());
        let empty_reason = lex("// dlflint:allow(float-eq, \"\")");
        assert!(empty_reason.pragmas[0].error.is_some());
        let bad_verb = lex("// dlflint:deny(float-eq, \"x\")");
        assert!(bad_verb.pragmas[0].error.is_some());
        // Prose that merely *mentions* the syntax is not a pragma.
        let prose = lex("// suppress with dlflint:allow(rule, \"why\")");
        assert!(prose.pragmas.is_empty());
    }

    #[test]
    fn pragma_reason_may_contain_parentheses() {
        // The closing paren is found *after* the quoted reason, so a
        // justification like `fract() == 0.0` parses cleanly.
        let lexed = lex("// dlflint:allow(float-eq, \"fract() == 0.0 is exact (integrality)\")");
        let p = &lexed.pragmas[0];
        assert!(p.error.is_none(), "{:?}", p.error);
        assert_eq!(p.rule, "float-eq");
        assert_eq!(
            p.reason.as_deref(),
            Some("fract() == 0.0 is exact (integrality)")
        );
        // But an unterminated reason is still malformed.
        let open = lex("// dlflint:allow(float-eq, \"no closing quote)");
        assert!(open.pragmas[0].error.is_some());
    }
}
