//! The rule engine: path-scoped checks over the lexed token stream.
//!
//! Each rule is grounded in a runtime property the repo already tests —
//! byte-identical campaign reports, engine/dense parity, the exact
//! Theorem-2 yardstick — and turns it into a *source-level* invariant
//! checked on every commit. See `docs/LINTS.md` for the catalog with
//! rationale and examples.

use crate::lexer::{LexedFile, TokKind, Token};

/// One finding: a rule violated at a `file:line`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule name (kebab-case, as used in pragmas and the baseline).
    pub rule: &'static str,
    /// Human explanation with a fix hint.
    pub message: String,
}

impl Diagnostic {
    /// `file:line: [rule] message` — the human output format.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Rule names, in catalog order. `bad-pragma` is the always-on meta rule
/// for malformed/unknown pragmas.
pub const RULE_NAMES: &[&str] = &[
    "hash-iter-determinism",
    "no-wallclock-entropy",
    "hot-path-panic",
    "float-eq",
    "lossy-cast",
    "alloc-in-hot-loop",
    "bad-pragma",
];

/// Path scope of one rule: a file is checked iff its workspace-relative
/// path starts with one of `include` and none of `exclude`.
struct Scope {
    include: &'static [&'static str],
    exclude: &'static [&'static str],
}

impl Scope {
    fn covers(&self, path: &str) -> bool {
        self.include.iter().any(|p| path.starts_with(p))
            && !self.exclude.iter().any(|p| path.starts_with(p))
    }
}

/// Deterministic-output paths: anything feeding byte-stable reports
/// (campaign JSON/markdown, service reports, scheduler decisions).
const SCOPE_DETERMINISM: Scope = Scope {
    include: &["crates/dlflow-sim/src/", "crates/dlflow-cli/src/"],
    exclude: &[],
};

/// Library code that must stay replayable: every crate except the bench
/// harness (whose whole point is wall-clock timing).
const SCOPE_NO_WALLCLOCK: Scope = Scope {
    include: &[
        "crates/dlflow-num/src/",
        "crates/dlflow-lp/src/",
        "crates/dlflow-core/src/",
        "crates/dlflow-gripps/src/",
        "crates/dlflow-sim/src/",
        "crates/dlflow-cli/src/",
        "src/",
    ],
    exclude: &[],
};

/// The per-event hot path: the engine and every scheduler callback.
const SCOPE_HOT_PATH: Scope = Scope {
    include: &[
        "crates/dlflow-sim/src/engine.rs",
        "crates/dlflow-sim/src/schedulers/",
    ],
    exclude: &[],
};

/// Exactness-sensitive code. The sanctioned dyadic-exactness modules —
/// `instance.rs` (`round_sig_bits`/`to_exact_dyadic`) and `rational.rs`
/// (`Rat::from_f64`) — compare floats *by construction* and are excluded.
const SCOPE_FLOAT_EQ: Scope = Scope {
    include: &[
        "crates/dlflow-num/src/",
        "crates/dlflow-lp/src/",
        "crates/dlflow-core/src/",
        "crates/dlflow-gripps/src/",
        "crates/dlflow-sim/src/",
        "src/",
    ],
    exclude: &[
        "crates/dlflow-num/src/rational.rs",
        "crates/dlflow-core/src/instance.rs",
    ],
};

/// Exact-arithmetic paths. The bignum limb kernels (`ubig.rs`, `ibig.rs`)
/// are excluded: u128↔u64 splitting casts *are* the algorithm there
/// (Knuth Algorithm D, carry propagation), not lossy conversions.
const SCOPE_LOSSY_CAST: Scope = Scope {
    include: &["crates/dlflow-num/src/", "crates/dlflow-core/src/"],
    exclude: &[
        "crates/dlflow-num/src/ubig.rs",
        "crates/dlflow-num/src/ibig.rs",
    ],
};

/// Where the alloc-in-hot-loop heuristic looks, and inside which
/// functions (the per-event paths ROADMAP item 2 wants allocation-lean).
const HOT_LOOP_FNS: &[(&str, &[&str])] = &[
    (
        "crates/dlflow-sim/src/engine.rs",
        &["step", "drain", "admit_due"],
    ),
    ("crates/dlflow-sim/src/schedulers/", &["plan"]),
];

/// Cast targets treated as lossy (truncation, wrap, or sign change is
/// possible). Widening to `i128`/`u128`/`f64` is tolerated by the
/// heuristic — a lexical pass cannot see the source type, and those
/// targets are the repo's standard widening idiom.
const LOSSY_TARGETS: &[&str] = &[
    "i8", "i16", "i32", "i64", "isize", "u8", "u16", "u32", "u64", "usize", "f32",
];

/// Identifiers whose presence means ambient wall-clock or entropy.
const WALLCLOCK_IDENTS: &[&str] = &[
    "Instant",
    "SystemTime",
    "thread_rng",
    "from_entropy",
    "OsRng",
];

/// `.method()` calls that allocate (heuristically) in a hot loop.
const ALLOC_METHODS: &[&str] = &["clone", "to_vec", "to_owned", "to_string", "collect"];

/// `path::new`-style constructors that allocate.
const ALLOC_CTORS: &[&str] = &["Vec", "String", "Box", "VecDeque", "BTreeMap", "HashMap"];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Runs every scoped rule over one lexed file. `path` must be
/// workspace-relative with forward slashes. Pragma handling (suppression
/// and `bad-pragma`) happens in the caller — this returns raw findings.
pub fn check_file(path: &str, lexed: &LexedFile) -> Vec<Diagnostic> {
    let toks = &lexed.tokens;
    let in_test = test_mask(toks);
    let mut out = Vec::new();
    let diag = |line: usize, rule: &'static str, message: String| Diagnostic {
        file: path.to_string(),
        line,
        rule,
        message,
    };

    for (i, t) in toks.iter().enumerate() {
        if in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        let prev = i.checked_sub(1).map(|k| toks[k].text.as_str());
        let next = toks.get(i + 1).map(|t| t.text.as_str());
        let name = t.text.as_str();

        if SCOPE_DETERMINISM.covers(path) && (name == "HashMap" || name == "HashSet") {
            out.push(diag(
                t.line,
                "hash-iter-determinism",
                format!(
                    "`{name}` iterates in nondeterministic order; deterministic-output \
                     paths must use `BTreeMap`/`BTreeSet` (byte-stable reports depend on it)"
                ),
            ));
        }

        if SCOPE_NO_WALLCLOCK.covers(path) && WALLCLOCK_IDENTS.contains(&name) {
            out.push(diag(
                t.line,
                "no-wallclock-entropy",
                format!(
                    "`{name}` reads ambient wall-clock/entropy; library code must stay \
                     replayable — timing belongs in dlflow-bench, randomness must be seeded"
                ),
            ));
        }

        if SCOPE_HOT_PATH.covers(path) {
            let is_method_panic = (name == "unwrap" || name == "expect") && prev == Some(".");
            let is_macro_panic =
                matches!(name, "panic" | "todo" | "unimplemented") && next == Some("!");
            if is_method_panic || is_macro_panic {
                out.push(diag(
                    t.line,
                    "hot-path-panic",
                    format!(
                        "`{name}` can panic mid-event; engine and scheduler paths must \
                         return typed errors (`SimError`) or justify with a pragma"
                    ),
                ));
            }
        }

        if SCOPE_LOSSY_CAST.covers(path)
            && name == "as"
            && next.is_some_and(|n| LOSSY_TARGETS.contains(&n))
        {
            out.push(diag(
                t.line,
                "lossy-cast",
                format!(
                    "`as {}` can silently truncate or wrap in an exact-arithmetic path; \
                     use `try_from`/checked conversion or justify with a pragma",
                    next.unwrap_or_default()
                ),
            ));
        }
    }

    if SCOPE_FLOAT_EQ.covers(path) {
        check_float_eq(path, toks, &in_test, &mut out);
    }
    for (prefix, fns) in HOT_LOOP_FNS {
        if path.starts_with(prefix) {
            check_alloc_in_hot_loop(path, toks, &in_test, fns, &mut out);
        }
    }
    out.sort();
    out
}

/// Flags `==`/`!=` where one side is a float literal (optionally behind
/// a unary minus). A lexical pass cannot type variables, so float-typed
/// *identifiers* compared for equality are out of reach — the rule
/// catches the literal form, which is how the hazard actually appears.
fn check_float_eq(path: &str, toks: &[Token], in_test: &[bool], out: &mut Vec<Diagnostic>) {
    for (i, t) in toks.iter().enumerate() {
        if in_test[i] || t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        let lhs_float = i
            .checked_sub(1)
            .is_some_and(|k| toks[k].kind == TokKind::Float);
        let mut k = i + 1;
        if toks.get(k).is_some_and(|t| t.text == "-") {
            k += 1;
        }
        let rhs_float = toks.get(k).is_some_and(|t| t.kind == TokKind::Float);
        if lhs_float || rhs_float {
            out.push(Diagnostic {
                file: path.to_string(),
                line: t.line,
                rule: "float-eq",
                message: format!(
                    "float `{}` comparison is exactness-hostile outside the dyadic \
                     modules; compare with a tolerance, `total_cmp`, or exact `Rat`",
                    t.text
                ),
            });
        }
    }
}

/// Heuristic: inside the named functions, flags allocation-shaped calls
/// (`Vec::new`, `vec!`, `.clone()`, `.collect()`, …) that sit inside a
/// `for`/`while`/`loop` body — per-event allocations are what ROADMAP
/// item 2's flatten-the-hot-path work removes.
fn check_alloc_in_hot_loop(
    path: &str,
    toks: &[Token],
    in_test: &[bool],
    fns: &[&str],
    out: &mut Vec<Diagnostic>,
) {
    let mut i = 0;
    while i < toks.len() {
        let is_target_fn = toks[i].text == "fn"
            && !in_test[i]
            && toks
                .get(i + 1)
                .is_some_and(|t| fns.contains(&t.text.as_str()));
        if !is_target_fn {
            i += 1;
            continue;
        }
        let fn_name = toks[i + 1].text.clone();
        // Body = first `{` after the signature to its match.
        let Some(open) = (i..toks.len()).find(|&k| toks[k].text == "{") else {
            break;
        };
        let close = match_brace(toks, open);
        scan_loops(path, toks, open + 1, close, &fn_name, out);
        i = close + 1;
    }
}

/// Finds loop bodies in `[from, to)` and flags allocations inside them.
fn scan_loops(
    path: &str,
    toks: &[Token],
    from: usize,
    to: usize,
    fn_name: &str,
    out: &mut Vec<Diagnostic>,
) {
    let mut i = from;
    while i < to {
        if matches!(toks[i].text.as_str(), "for" | "while" | "loop")
            && toks[i].kind == TokKind::Ident
        {
            // Loop body starts at the next `{` (loop headers cannot
            // contain bare struct literals, so this is unambiguous).
            let Some(open) = (i..to).find(|&k| toks[k].text == "{") else {
                break;
            };
            let close = match_brace(toks, open).min(to);
            flag_allocs(path, toks, open + 1, close, fn_name, out);
            i = close + 1;
        } else {
            i += 1;
        }
    }
}

/// Flags every allocation-shaped token in `[from, to)` (nested loops are
/// covered because their bodies are inside this span).
fn flag_allocs(
    path: &str,
    toks: &[Token],
    from: usize,
    to: usize,
    fn_name: &str,
    out: &mut Vec<Diagnostic>,
) {
    for i in from..to {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev = i.checked_sub(1).map(|k| toks[k].text.as_str());
        let next = toks.get(i + 1).map(|t| t.text.as_str());
        let name = t.text.as_str();
        let hit = (ALLOC_METHODS.contains(&name) && prev == Some("."))
            || (ALLOC_MACROS.contains(&name) && next == Some("!"))
            || ((name == "new" || name == "with_capacity")
                && prev == Some("::")
                && i.checked_sub(2)
                    .is_some_and(|k| ALLOC_CTORS.contains(&toks[k].text.as_str())));
        if hit {
            out.push(Diagnostic {
                file: path.to_string(),
                line: t.line,
                rule: "alloc-in-hot-loop",
                message: format!(
                    "`{name}` allocates inside a loop in hot function `{fn_name}`; \
                     hoist the buffer out of the loop or reuse a scratch field"
                ),
            });
        }
    }
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Marks tokens inside `#[cfg(test)] mod … { … }` spans (and the
/// attribute itself). Test code legitimately unwraps, times, and
/// compares floats — every rule skips it.
fn test_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if is_cfg_test_attr(toks, i) {
            // `#` `[` `cfg` `(` `test` `)` `]` = 7 tokens; then `mod`.
            let after = i + 7;
            if toks.get(after).is_some_and(|t| t.text == "mod") {
                let Some(open) = (after..toks.len()).find(|&k| toks[k].text == "{") else {
                    for m in mask.iter_mut().skip(i) {
                        *m = true;
                    }
                    break;
                };
                let close = match_brace(toks, open);
                for m in mask.iter_mut().take(close + 1).skip(i) {
                    *m = true;
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

fn is_cfg_test_attr(toks: &[Token], i: usize) -> bool {
    let texts = ["#", "[", "cfg", "(", "test", ")", "]"];
    toks.len() >= i + texts.len()
        && texts
            .iter()
            .enumerate()
            .all(|(k, want)| toks[i + k].text == *want)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        check_file(path, &lex(src))
    }

    #[test]
    fn rules_respect_scope() {
        let src = "use std::collections::HashMap;";
        assert_eq!(run("crates/dlflow-sim/src/schedulers/mct.rs", src).len(), 1);
        // Out of scope: same source, different path.
        assert!(run("crates/dlflow-num/src/rational.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_skipped() {
        let src = "
fn plan() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); z.expect(\"msg\"); }
}
";
        let d = run("crates/dlflow-sim/src/engine.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn unwrap_or_family_is_not_flagged() {
        let src = "fn plan() { a.unwrap_or(0); b.unwrap_or_else(f); c.unwrap_or_default(); }";
        assert!(run("crates/dlflow-sim/src/engine.rs", src).is_empty());
    }

    #[test]
    fn float_eq_catches_literals_both_sides_and_unary_minus() {
        let path = "crates/dlflow-core/src/maxflow.rs";
        assert_eq!(run(path, "if x == 0.0 {}").len(), 1);
        assert_eq!(run(path, "if 1.5 != y {}").len(), 1);
        assert_eq!(run(path, "if x == -2.0 {}").len(), 1);
        assert!(run(path, "if x == 0 {}").is_empty()); // int is fine
        assert!(run(path, "if x <= 0.0 {}").is_empty()); // ordering is fine
    }

    #[test]
    fn lossy_cast_targets_only() {
        let path = "crates/dlflow-core/src/milestones.rs";
        assert_eq!(run(path, "let x = y as u32;").len(), 1);
        assert_eq!(run(path, "let x = y as usize;").len(), 1);
        assert!(run(path, "let x = y as f64;").is_empty()); // widening idiom
        assert!(run(path, "let x = y as u128;").is_empty());
        assert!(run(path, "let x = n as Foo;").is_empty()); // non-numeric
    }

    #[test]
    fn alloc_in_hot_loop_only_inside_loops_of_target_fns() {
        let path = "crates/dlflow-sim/src/engine.rs";
        // Allocation before the loop: fine.
        let clean = "fn step() { let v = Vec::new(); for x in v { use_(x); } }";
        assert!(run(path, clean).is_empty());
        // Allocation inside the loop of a target fn: flagged.
        let bad = "fn step() { for x in xs { let v = x.to_vec(); } }";
        let d = run(path, bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "alloc-in-hot-loop");
        // Same pattern in a non-target fn: ignored.
        let other = "fn helper() { for x in xs { let v = x.to_vec(); } }";
        assert!(run(path, other).is_empty());
        // Macro and ctor forms.
        let forms = "fn drain() { while go { let a = vec![0; n]; let b = String::new(); } }";
        assert_eq!(run(path, forms).len(), 2);
    }

    #[test]
    fn wallclock_idents_flagged_in_lib_paths() {
        let src = "use std::time::Instant;";
        assert_eq!(run("crates/dlflow-sim/src/service.rs", src).len(), 1);
        assert!(run("crates/dlflow-bench/src/bin/campaign.rs", src).is_empty());
    }
}
