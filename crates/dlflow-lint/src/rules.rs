//! The rule engine: lexical rules scoped by path, semantic rules scoped
//! by *reachability* over the workspace call graph.
//!
//! Each rule is grounded in a runtime property the repo already tests —
//! byte-identical campaign reports, engine/dense parity, the exact
//! Theorem-2 yardstick — and turns it into a *source-level* invariant
//! checked on every commit. PR 7 made the hot-path rules transitive:
//! a helper extracted out of `Engine::step` into a new module stays
//! covered because the rules follow call edges, not file names. See
//! `docs/LINTS.md` for the catalog with rationale and examples, or
//! `dlflow-lint --explain <rule>`.

use crate::graph::{loop_spans, FnId, FnInfo, Graph, GraphFile};
use crate::items::{TypeKind, Vis};
use crate::lexer::{LexedFile, TokKind, Token};
use crate::reach::Reach;
use std::collections::{BTreeMap, BTreeSet};

/// One finding: a rule violated at a `file:line`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule name (kebab-case, as used in pragmas and the baseline).
    pub rule: &'static str,
    /// Human explanation with a fix hint.
    pub message: String,
    /// Stable symbol of the enclosing item (baseline-v2 key), e.g.
    /// `dlflow-sim::engine::Engine::step`; file-level symbol when the
    /// finding is outside any function.
    pub symbol: String,
    /// Witness call chain for reachability findings (root → … →
    /// `` `token` at file:line `` as the last element); empty for
    /// lexical findings.
    pub chain: Vec<String>,
}

impl Diagnostic {
    /// `file:line: [rule] message`, plus an indented `via …` line
    /// rendering the witness chain when the finding is reachability
    /// based — the human output format.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        );
        if !self.chain.is_empty() {
            s.push_str("\n    via ");
            s.push_str(&self.chain.join(" → "));
        }
        s
    }
}

/// Rule names, in catalog order. `bad-pragma` is the always-on meta rule
/// for malformed/unknown pragmas.
pub const RULE_NAMES: &[&str] = &[
    "hash-iter-determinism",
    "no-wallclock-entropy",
    "hot-path-panic",
    "float-eq",
    "lossy-cast",
    "alloc-in-hot-loop",
    "float-into-exact",
    "scheduler-contract",
    "dead-pub",
    "bad-pragma",
];

/// Long-form rationale shown by `dlflow-lint --explain <rule>`.
const EXPLAIN: &[(&str, &str)] = &[
    (
        "hash-iter-determinism",
        "Campaign reports and scheduler decisions must be byte-identical across runs \
         and thread counts (the parallel-vs-serial parity tests depend on it). \
         `HashMap`/`HashSet` iterate in randomized order, so any use in a \
         deterministic-output path (dlflow-sim, dlflow-cli) is a hazard even when \
         today's code never iterates: the next refactor might. Use `BTreeMap`/`BTreeSet`.",
    ),
    (
        "no-wallclock-entropy",
        "Library code must stay replayable: the same trace and seed must produce the \
         same report forever. `Instant`/`SystemTime` read ambient wall-clock and \
         `thread_rng`/`from_entropy`/`OsRng` read ambient entropy — both smuggle \
         nondeterminism into results. Timing belongs in dlflow-bench (which is out of \
         scope by design); randomness must come from an explicit seed. Since PR 7 the \
         scope also covers examples/, tests/, and benches/.",
    ),
    (
        "hot-path-panic",
        "The per-event engine path (`Engine::{step,drain,admit_due}`, `Trace::replay`, \
         every `OnlineScheduler` hook) must return typed errors, not panic mid-event — \
         a panic aborts a 10^6-event replay and poisons campaign workers. Since PR 7 \
         the rule is call-graph transitive over dlflow-sim/dlflow-core/dlflow-lp: a \
         panic-shaped token (`unwrap`, `expect`, `panic!`, `todo!`, `unimplemented!`) \
         anywhere *reachable* from a hot root is a finding, and the diagnostic carries \
         the witness chain (`Engine::step → settle → `unwrap` at file:line`). \
         Invariant-backed `expect`s are fine — say why in a pragma.",
    ),
    (
        "float-eq",
        "Exact `==`/`!=` on floats is exactness-hostile outside the sanctioned dyadic \
         modules (`rational.rs`, `instance.rs`), where float bit-patterns are compared \
         by construction. The rule catches comparisons against float literals — the \
         form the hazard actually takes. Compare with a tolerance, `total_cmp`, or \
         exact `Rat`.",
    ),
    (
        "lossy-cast",
        "`as` casts to narrower integer types (or f32) silently truncate, wrap, or \
         change sign — in exact-arithmetic code (dlflow-num, dlflow-core) that turns a \
         Theorem-2 yardstick into a wrong answer instead of a crash. Use `try_from` or \
         a checked conversion; where the bound is structural, justify with a pragma. \
         The bignum limb kernels (`ubig.rs`/`ibig.rs`) are excluded: u128↔u64 \
         splitting *is* the algorithm there.",
    ),
    (
        "alloc-in-hot-loop",
        "ROADMAP item 2 (10^8 events/s) needs the per-event path allocation-lean. \
         Since PR 7 the rule is call-graph transitive over dlflow-sim: an \
         allocation-shaped token (`Vec::new`, `vec!`, `.clone()`, `.collect()`, …) is \
         flagged when it sits inside a loop of a hot-reachable function, or anywhere \
         in a function that is itself reached through a call site inside a loop \
         (loop context propagates along edges). Hoist buffers out of the loop or \
         reuse a scratch field; justify cold setup allocations with a pragma.",
    ),
    (
        "float-into-exact",
        "Exact results (`min_max_*` / `feasible_at` in maxflow.rs) must be built from \
         exact arithmetic end to end. An f64→Rat conversion (`from_f64`, \
         `from_f64_approx`) or float arithmetic reachable from those entry points — \
         outside the sanctioned dyadic modules (`rational.rs`, `instance.rs`, \
         `traits.rs`) — silently rounds before the exact layer ever sees the value. \
         The diagnostic carries the witness chain from the entry point.",
    ),
    (
        "scheduler-contract",
        "Every `OnlineScheduler` impl must (a) define all event hooks explicitly — \
         `plan`, `on_arrival`, `on_completion`, `on_platform_change` — even as \
         deliberate no-ops, so \
         contract drift is visible in the diff when a hook is added; (b) embed a \
         string literal in `name()`, so reports can identify the policy without \
         running code; and (c) never reach wall-clock or entropy from a hook \
         (transitively — checked in files the `no-wallclock-entropy` scope does not \
         already cover).",
    ),
    (
        "dead-pub",
        "A `pub` item in a lib crate with zero references from any *other* workspace \
         crate, or from tests/examples/benches/bins, is API surface nobody consumes: \
         it dodges dead-code warnings forever and silently bit-rots. Demote it to \
         `pub(crate)` or remove it. References are counted by identifier anywhere \
         outside the defining crate's lib sources, plus doc comments *anywhere* \
         (doctests compile as external crates; intra-doc links need `pub`) — an \
         over-approximation, so a finding means *really* unreferenced.",
    ),
    (
        "bad-pragma",
        "A `dlflint:allow(rule, \"reason\")` pragma that is malformed, lacks a reason, \
         or names an unknown rule would otherwise silently suppress nothing (or the \
         wrong thing). Bad pragmas are findings themselves and cannot be suppressed.",
    ),
];

/// The `--explain` text for a rule, if the rule exists.
pub fn explain(rule: &str) -> Option<&'static str> {
    EXPLAIN.iter().find(|(r, _)| *r == rule).map(|(_, t)| *t)
}

/// Path scope of one rule: a file is checked iff its workspace-relative
/// path starts with one of `include` (or contains one of `contains`)
/// and none of `exclude` prefix-match.
struct Scope {
    include: &'static [&'static str],
    contains: &'static [&'static str],
    exclude: &'static [&'static str],
}

impl Scope {
    fn covers(&self, path: &str) -> bool {
        (self.include.iter().any(|p| path.starts_with(p))
            || self.contains.iter().any(|p| path.contains(p)))
            && !self.exclude.iter().any(|p| path.starts_with(p))
    }
}

/// Deterministic-output paths: anything feeding byte-stable reports
/// (campaign JSON/markdown, service reports, scheduler decisions).
const SCOPE_DETERMINISM: Scope = Scope {
    include: &["crates/dlflow-sim/src/", "crates/dlflow-cli/src/"],
    contains: &[],
    exclude: &[],
};

/// Code that must stay replayable: every lib crate except the bench
/// harness (whose whole point is wall-clock timing), plus — since PR 7 —
/// examples, root tests, and crate benches.
const SCOPE_NO_WALLCLOCK: Scope = Scope {
    include: &[
        "crates/dlflow-num/src/",
        "crates/dlflow-lp/src/",
        "crates/dlflow-core/src/",
        "crates/dlflow-gripps/src/",
        "crates/dlflow-sim/src/",
        "crates/dlflow-cli/src/",
        "src/",
        "examples/",
        "tests/",
    ],
    contains: &["/benches/"],
    exclude: &[],
};

/// Exactness-sensitive code. The sanctioned dyadic-exactness modules —
/// `instance.rs` (`round_sig_bits`/`to_exact_dyadic`) and `rational.rs`
/// (`Rat::from_f64`) — compare floats *by construction* and are excluded.
const SCOPE_FLOAT_EQ: Scope = Scope {
    include: &[
        "crates/dlflow-num/src/",
        "crates/dlflow-lp/src/",
        "crates/dlflow-core/src/",
        "crates/dlflow-gripps/src/",
        "crates/dlflow-sim/src/",
        "src/",
        "examples/",
        "tests/",
    ],
    contains: &["/benches/"],
    exclude: &[
        "crates/dlflow-num/src/rational.rs",
        "crates/dlflow-core/src/instance.rs",
    ],
};

/// Exact-arithmetic paths. The bignum limb kernels (`ubig.rs`, `ibig.rs`)
/// are excluded: u128↔u64 splitting casts *are* the algorithm there
/// (Knuth Algorithm D, carry propagation), not lossy conversions.
const SCOPE_LOSSY_CAST: Scope = Scope {
    include: &["crates/dlflow-num/src/", "crates/dlflow-core/src/"],
    contains: &[],
    exclude: &[
        "crates/dlflow-num/src/ubig.rs",
        "crates/dlflow-num/src/ibig.rs",
    ],
};

/// Crates whose hot-reachable functions the transitive panic rule scans.
/// dlflow-num is excluded deliberately: it is the arithmetic substrate,
/// and its `expect`s assert *arithmetic* invariants (non-zero divisors,
/// in-range limbs) that hold for any caller — see docs/LINTS.md.
const PANIC_SURFACE_CRATES: &[&str] = &["dlflow-sim", "dlflow-core", "dlflow-lp"];

/// Crate whose hot-reachable functions the transitive alloc rule scans
/// (the per-event allocation budget is an engine-crate property; LP
/// solve cost is ROADMAP item 3's problem).
const ALLOC_SURFACE_CRATES: &[&str] = &["dlflow-sim"];

/// Entry points of exact-report construction (all in maxflow.rs).
const EXACT_ROOT_FNS: &[&str] = &[
    "feasible_at",
    "min_max_weighted_flow_divisible",
    "min_max_weighted_flow_preemptive",
    "min_max_stretch_divisible",
    "min_max_weighted_flow_divisible_with",
    "min_max_weighted_flow_bisection",
];

/// Files allowed to touch floats on exact-reachable paths: the dyadic
/// conversion layer itself.
const EXACT_SANCTIONED_FILES: &[&str] = &[
    "crates/dlflow-num/src/rational.rs",
    "crates/dlflow-core/src/instance.rs",
    "crates/dlflow-num/src/traits.rs",
];

/// The `OnlineScheduler` event hooks every impl must write explicitly.
const SCHEDULER_HOOKS: &[&str] = &[
    "name",
    "on_arrival",
    "on_completion",
    "on_platform_change",
    "plan",
];

/// Cast targets treated as lossy (truncation, wrap, or sign change is
/// possible). Widening to `i128`/`u128`/`f64` is tolerated by the
/// heuristic — a lexical pass cannot see the source type, and those
/// targets are the repo's standard widening idiom.
const LOSSY_TARGETS: &[&str] = &[
    "i8", "i16", "i32", "i64", "isize", "u8", "u16", "u32", "u64", "usize", "f32",
];

/// Identifiers whose presence means ambient wall-clock or entropy.
const WALLCLOCK_IDENTS: &[&str] = &[
    "Instant",
    "SystemTime",
    "thread_rng",
    "from_entropy",
    "OsRng",
];

/// `.method()` calls that allocate (heuristically) in a hot loop.
const ALLOC_METHODS: &[&str] = &["clone", "to_vec", "to_owned", "to_string", "collect"];

/// `path::new`-style constructors that allocate.
const ALLOC_CTORS: &[&str] = &["Vec", "String", "Box", "VecDeque", "BTreeMap", "HashMap"];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

// ---------------------------------------------------------------------
// Lexical rules (path-scoped, single-file)
// ---------------------------------------------------------------------

fn diag(path: &str, line: usize, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        file: path.to_string(),
        line,
        rule,
        message,
        symbol: String::new(),
        chain: Vec::new(),
    }
}

/// `hash-iter-determinism`: `HashMap`/`HashSet` in deterministic-output
/// paths.
pub(crate) fn check_hash_iter(path: &str, toks: &[Token], mask: &[bool]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if !SCOPE_DETERMINISM.covers(path) {
        return out;
    }
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        if name == "HashMap" || name == "HashSet" {
            out.push(diag(
                path,
                t.line,
                "hash-iter-determinism",
                format!(
                    "`{name}` iterates in nondeterministic order; deterministic-output \
                     paths must use `BTreeMap`/`BTreeSet` (byte-stable reports depend on it)"
                ),
            ));
        }
    }
    out
}

/// `no-wallclock-entropy`: ambient clock/entropy reads in replayable
/// code.
pub(crate) fn check_wallclock(path: &str, toks: &[Token], mask: &[bool]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if !SCOPE_NO_WALLCLOCK.covers(path) {
        return out;
    }
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        if WALLCLOCK_IDENTS.contains(&name) {
            out.push(diag(
                path,
                t.line,
                "no-wallclock-entropy",
                format!(
                    "`{name}` reads ambient wall-clock/entropy; library code must stay \
                     replayable — timing belongs in dlflow-bench, randomness must be seeded"
                ),
            ));
        }
    }
    out
}

/// `float-eq`: flags `==`/`!=` where one side is a float literal
/// (optionally behind a unary minus). A lexical pass cannot type
/// variables, so float-typed *identifiers* compared for equality are out
/// of reach — the rule catches the literal form, which is how the hazard
/// actually appears.
pub(crate) fn check_float_eq(path: &str, toks: &[Token], mask: &[bool]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if !SCOPE_FLOAT_EQ.covers(path) {
        return out;
    }
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        let lhs_float = i
            .checked_sub(1)
            .is_some_and(|k| toks[k].kind == TokKind::Float);
        let mut k = i + 1;
        if toks.get(k).is_some_and(|t| t.text == "-") {
            k += 1;
        }
        let rhs_float = toks.get(k).is_some_and(|t| t.kind == TokKind::Float);
        if lhs_float || rhs_float {
            out.push(diag(
                path,
                t.line,
                "float-eq",
                format!(
                    "float `{}` comparison is exactness-hostile outside the dyadic \
                     modules; compare with a tolerance, `total_cmp`, or exact `Rat`",
                    t.text
                ),
            ));
        }
    }
    out
}

/// `lossy-cast`: `as` casts to narrowing targets in exact-arithmetic
/// paths.
pub(crate) fn check_lossy_cast(path: &str, toks: &[Token], mask: &[bool]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if !SCOPE_LOSSY_CAST.covers(path) {
        return out;
    }
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident || t.text != "as" {
            continue;
        }
        let next = toks.get(i + 1).map(|t| t.text.as_str());
        if next.is_some_and(|n| LOSSY_TARGETS.contains(&n)) {
            out.push(diag(
                path,
                t.line,
                "lossy-cast",
                format!(
                    "`as {}` can silently truncate or wrap in an exact-arithmetic path; \
                     use `try_from`/checked conversion or justify with a pragma",
                    next.unwrap_or_default()
                ),
            ));
        }
    }
    out
}

/// Runs every *lexical* rule over one lexed file (the semantic rules
/// need the workspace graph — see [`crate::analyze`]). `path` must be
/// workspace-relative with forward slashes. Pragma handling (suppression
/// and `bad-pragma`) happens in the caller — this returns raw findings.
pub fn check_file(path: &str, lexed: &LexedFile) -> Vec<Diagnostic> {
    let toks = &lexed.tokens;
    let mask = test_mask(toks);
    let mut out = Vec::new();
    out.extend(check_hash_iter(path, toks, &mask));
    out.extend(check_wallclock(path, toks, &mask));
    out.extend(check_float_eq(path, toks, &mask));
    out.extend(check_lossy_cast(path, toks, &mask));
    out.sort();
    out
}

// ---------------------------------------------------------------------
// Semantic rules (call-graph reachability)
// ---------------------------------------------------------------------

/// Hot-path roots: `Engine::{step,drain,admit_due}`, `Trace::replay`,
/// the sharded front-end's per-event entry points
/// `ShardedEngine::{push_arrival,drain,replay_trace}`, and every
/// `OnlineScheduler` event hook (impls *and* un-overridden trait
/// defaults — a default body runs too).
pub(crate) fn hot_roots(g: &Graph) -> Vec<FnId> {
    let mut roots = g.find(|f| {
        matches!(
            (f.item.owner.as_deref(), f.item.name.as_str()),
            (Some("Engine"), "step" | "drain" | "admit_due")
                | (Some("Trace"), "replay")
                | (
                    Some("ShardedEngine"),
                    "push_arrival" | "drain" | "replay_trace"
                )
        )
    });
    roots.extend(scheduler_hook_roots(g));
    roots
}

/// Every `OnlineScheduler` event hook: impl methods and trait defaults.
pub(crate) fn scheduler_hook_roots(g: &Graph) -> Vec<FnId> {
    g.find(|f| {
        matches!(
            f.item.name.as_str(),
            "plan" | "on_arrival" | "on_completion" | "on_platform_change"
        ) && (f.item.trait_impl.as_deref() == Some("OnlineScheduler")
            || (f.item.owner.as_deref() == Some("OnlineScheduler") && f.item.is_trait_default))
    })
}

/// Roots of exact-report construction for `float-into-exact`.
pub(crate) fn exact_roots(g: &Graph) -> Vec<FnId> {
    g.find(|f| {
        f.item.owner.is_none()
            && f.file.ends_with("maxflow.rs")
            && EXACT_ROOT_FNS.contains(&f.item.name.as_str())
    })
}

fn file_of<'x, 'a>(files: &'x [GraphFile<'a>], idx: usize) -> &'x GraphFile<'a> {
    files
        .iter()
        .find(|f| f.file_idx == idx)
        .expect("graph file for fn")
}

/// The panic-shaped token at `i`, if any.
fn panic_site(toks: &[Token], i: usize) -> Option<&'static str> {
    let t = &toks[i];
    if t.kind != TokKind::Ident {
        return None;
    }
    let prev = i.checked_sub(1).map(|k| toks[k].text.as_str());
    let next = toks.get(i + 1).map(|t| t.text.as_str());
    match t.text.as_str() {
        "unwrap" if prev == Some(".") => Some("unwrap"),
        "expect" if prev == Some(".") => Some("expect"),
        "panic" if next == Some("!") => Some("panic"),
        "todo" if next == Some("!") => Some("todo"),
        "unimplemented" if next == Some("!") => Some("unimplemented"),
        _ => None,
    }
}

/// The allocation-shaped token at `i`, if any.
fn alloc_site(toks: &[Token], i: usize) -> Option<&str> {
    let t = &toks[i];
    if t.kind != TokKind::Ident {
        return None;
    }
    let prev = i.checked_sub(1).map(|k| toks[k].text.as_str());
    let next = toks.get(i + 1).map(|t| t.text.as_str());
    let name = t.text.as_str();
    let hit = (ALLOC_METHODS.contains(&name) && prev == Some("."))
        || (ALLOC_MACROS.contains(&name) && next == Some("!"))
        || ((name == "new" || name == "with_capacity")
            && prev == Some("::")
            && i.checked_sub(2)
                .is_some_and(|k| ALLOC_CTORS.contains(&toks[k].text.as_str())));
    hit.then_some(name)
}

fn site_chain(
    hot: &Reach,
    g: &Graph,
    id: FnId,
    want_ctx: bool,
    tok: &str,
    file: &str,
    line: usize,
) -> Vec<String> {
    let mut chain = hot.chain(g, id, want_ctx);
    chain.push(format!("`{tok}` at {file}:{line}"));
    chain
}

/// `hot-path-panic`, transitive: panic-shaped tokens in any function
/// reachable from a hot root, within the panic surface crates.
pub(crate) fn check_hot_path_panic(
    g: &Graph,
    files: &[GraphFile<'_>],
    hot: &Reach,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (id, f) in g.fns.iter().enumerate() {
        if !hot.is_hot(id) || !PANIC_SURFACE_CRATES.contains(&f.krate.as_str()) {
            continue;
        }
        let Some((lo, hi)) = f.item.body else {
            continue;
        };
        let gf = file_of(files, f.file_idx);
        for i in lo..hi.min(gf.tokens.len()) {
            if gf.mask[i] {
                continue;
            }
            if let Some(name) = panic_site(gf.tokens, i) {
                let line = gf.tokens[i].line;
                out.push(Diagnostic {
                    file: f.file.clone(),
                    line,
                    rule: "hot-path-panic",
                    message: format!(
                        "`{name}` can panic mid-event and is reachable from a hot root; \
                         return a typed error or justify the invariant with a pragma"
                    ),
                    symbol: f.symbol(),
                    chain: site_chain(hot, g, id, false, name, &f.file, line),
                });
            }
        }
    }
    out
}

/// `alloc-in-hot-loop`, transitive: allocation-shaped tokens inside a
/// loop of a hot-reachable function, or anywhere in a function reached
/// through an in-loop call site (loop context propagates along edges).
pub(crate) fn check_alloc_in_hot_loop(
    g: &Graph,
    files: &[GraphFile<'_>],
    hot: &Reach,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (id, f) in g.fns.iter().enumerate() {
        if !hot.is_hot(id) || !ALLOC_SURFACE_CRATES.contains(&f.krate.as_str()) {
            continue;
        }
        let Some((lo, hi)) = f.item.body else {
            continue;
        };
        let gf = file_of(files, f.file_idx);
        let loops = loop_spans(gf.tokens, lo, hi.min(gf.tokens.len()));
        let fn_in_loop_ctx = hot.in_loop_ctx(id);
        for i in lo..hi.min(gf.tokens.len()) {
            if gf.mask[i] {
                continue;
            }
            let Some(name) = alloc_site(gf.tokens, i) else {
                continue;
            };
            let in_own_loop = loops.iter().any(|&(a, b)| a <= i && i < b);
            if !in_own_loop && !fn_in_loop_ctx {
                continue;
            }
            let line = gf.tokens[i].line;
            let name = name.to_string();
            let message = if in_own_loop {
                format!(
                    "`{name}` allocates inside a loop of hot-reachable `{}`; hoist the \
                     buffer out of the loop or reuse a scratch field",
                    f.display()
                )
            } else {
                format!(
                    "`{name}` allocates in `{}`, which is reached from inside a hot \
                     loop; hoist the allocation toward the caller or reuse a scratch field",
                    f.display()
                )
            };
            out.push(Diagnostic {
                file: f.file.clone(),
                line,
                rule: "alloc-in-hot-loop",
                message,
                symbol: f.symbol(),
                chain: site_chain(hot, g, id, !in_own_loop, &name, &f.file, line),
            });
        }
    }
    out
}

/// True when the float literal at `i` takes part in binary arithmetic.
fn float_arith_site(toks: &[Token], i: usize) -> bool {
    if toks[i].kind != TokKind::Float {
        return false;
    }
    let prev = i.checked_sub(1).map(|k| toks[k].text.as_str());
    let next = toks.get(i + 1).map(|t| t.text.as_str());
    if matches!(next, Some("+" | "-" | "*" | "/")) || matches!(prev, Some("+" | "*" | "/")) {
        return true;
    }
    // `x - 1.5` is binary iff the token before `-` can end an operand.
    if prev == Some("-") {
        if let Some(before) = i.checked_sub(2).map(|k| &toks[k]) {
            return matches!(
                before.kind,
                TokKind::Ident | TokKind::Int | TokKind::Float | TokKind::Literal
            ) || before.text == ")"
                || before.text == "]";
        }
    }
    false
}

/// `float-into-exact`: f64→Rat conversions or float arithmetic in
/// functions reachable from exact-report entry points, outside the
/// sanctioned dyadic modules.
pub(crate) fn check_float_into_exact(
    g: &Graph,
    files: &[GraphFile<'_>],
    exact: &Reach,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (id, f) in g.fns.iter().enumerate() {
        if !exact.is_hot(id) || EXACT_SANCTIONED_FILES.iter().any(|s| f.file.ends_with(s)) {
            continue;
        }
        let Some((lo, hi)) = f.item.body else {
            continue;
        };
        let gf = file_of(files, f.file_idx);
        for i in lo..hi.min(gf.tokens.len()) {
            if gf.mask[i] {
                continue;
            }
            let t = &gf.tokens[i];
            let conversion = t.kind == TokKind::Ident
                && (t.text == "from_f64" || t.text == "from_f64_approx")
                && gf.tokens.get(i + 1).is_some_and(|n| n.text == "(");
            let arith = float_arith_site(gf.tokens, i);
            if !conversion && !arith {
                continue;
            }
            let what = if conversion {
                format!("`{}` rounds f64 into the exact domain", t.text)
            } else {
                "float arithmetic feeds the exact domain".to_string()
            };
            out.push(Diagnostic {
                file: f.file.clone(),
                line: t.line,
                rule: "float-into-exact",
                message: format!(
                    "{what} on a path reachable from an exact entry point; keep the \
                     conversion in the sanctioned dyadic modules or justify with a pragma"
                ),
                symbol: f.symbol(),
                chain: site_chain(exact, g, id, false, &t.text, &f.file, t.line),
            });
        }
    }
    out
}

fn impl_symbol(f: &FnInfo) -> String {
    let s = f.symbol();
    match s.rsplit_once("::") {
        Some((head, _)) => head.to_string(),
        None => s,
    }
}

/// `scheduler-contract`: every `OnlineScheduler` impl defines all event
/// hooks, `name()` embeds a string literal, and no hook transitively
/// reaches wall-clock/entropy (in files the `no-wallclock-entropy`
/// lexical scope does not already cover).
pub(crate) fn check_scheduler_contract(
    g: &Graph,
    files: &[GraphFile<'_>],
    hooks: &Reach,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // (a) + (b): per-impl completeness and the name() literal.
    let mut impls: BTreeMap<(usize, String), Vec<FnId>> = BTreeMap::new();
    for (id, f) in g.fns.iter().enumerate() {
        if f.item.trait_impl.as_deref() == Some("OnlineScheduler") {
            let owner = f.item.owner.clone().unwrap_or_default();
            impls.entry((f.file_idx, owner)).or_default().push(id);
        }
    }
    for ((_, owner), ids) in &impls {
        let first = ids
            .iter()
            .map(|&id| &g.fns[id])
            .min_by_key(|f| f.item.line)
            .expect("impl group is non-empty");
        let defined: BTreeSet<&str> = ids.iter().map(|&id| g.fns[id].item.name.as_str()).collect();
        for hook in SCHEDULER_HOOKS {
            if !defined.contains(hook) {
                out.push(Diagnostic {
                    file: first.file.clone(),
                    line: first.item.line,
                    rule: "scheduler-contract",
                    message: format!(
                        "`impl OnlineScheduler for {owner}` does not define `{hook}`; \
                         write every event hook explicitly (an empty body documents \
                         intent) so contract drift stays visible"
                    ),
                    symbol: impl_symbol(first),
                    chain: Vec::new(),
                });
            }
        }
        if let Some(&name_id) = ids.iter().find(|&&id| g.fns[id].item.name == "name") {
            let f = &g.fns[name_id];
            let has_literal = f.item.body.is_some_and(|(lo, hi)| {
                let gf = file_of(files, f.file_idx);
                gf.tokens[lo..hi.min(gf.tokens.len())]
                    .iter()
                    .any(|t| t.kind == TokKind::Literal && t.text.contains('"'))
            });
            if !has_literal {
                out.push(Diagnostic {
                    file: f.file.clone(),
                    line: f.item.line,
                    rule: "scheduler-contract",
                    message: format!(
                        "`{owner}::name()` must embed a string literal so reports \
                         identify the policy without running code"
                    ),
                    symbol: f.symbol(),
                    chain: Vec::new(),
                });
            }
        }
    }

    // (c): wall-clock/entropy transitively reachable from any hook, in
    // files outside the lexical no-wallclock scope (no double report).
    for (id, f) in g.fns.iter().enumerate() {
        if !hooks.is_hot(id) || SCOPE_NO_WALLCLOCK.covers(&f.file) {
            continue;
        }
        let Some((lo, hi)) = f.item.body else {
            continue;
        };
        let gf = file_of(files, f.file_idx);
        for i in lo..hi.min(gf.tokens.len()) {
            let t = &gf.tokens[i];
            if gf.mask[i] || t.kind != TokKind::Ident {
                continue;
            }
            if WALLCLOCK_IDENTS.contains(&t.text.as_str()) {
                out.push(Diagnostic {
                    file: f.file.clone(),
                    line: t.line,
                    rule: "scheduler-contract",
                    message: format!(
                        "`{}` (ambient wall-clock/entropy) is reachable from a \
                         scheduler event hook; hooks must stay replayable",
                        t.text
                    ),
                    symbol: f.symbol(),
                    chain: site_chain(hooks, g, id, false, &t.text, &f.file, t.line),
                });
            }
        }
    }
    out
}

/// One file's reference corpus for `dead-pub`: lexed identifiers plus
/// the raw text (doc comments and doctests reference API the lexer
/// strips).
pub(crate) struct RefSource<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// Lexed tokens.
    pub tokens: &'a [Token],
    /// Raw file contents.
    pub raw: &'a str,
}

/// Word-boundary containment: `needle` occurs in `hay` not embedded in a
/// longer identifier.
fn contains_word(hay: &str, needle: &str) -> bool {
    let bytes = hay.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let ok_before = start == 0 || !is_ident(bytes[start - 1]);
        let ok_after = end == bytes.len() || !is_ident(bytes[end]);
        if ok_before && ok_after {
            return true;
        }
        from = start + 1;
    }
    false
}

fn ref_qualifies(path: &str, def_crate: &str) -> bool {
    crate::graph::crate_of(path) != def_crate
        || path.contains("/tests/")
        || path.contains("/examples/")
        || path.contains("/benches/")
        || path.contains("/bin/")
        || path.ends_with("/main.rs")
}

/// Doc-comment text of a file (`///` and `//!` lines). Doctests inside
/// doc comments compile as *external* crates against the public API, and
/// rustdoc intra-doc links break (`-D warnings`) when their target loses
/// `pub` — so a doc mention anywhere keeps an item alive.
fn doc_text(raw: &str) -> String {
    let mut out = String::new();
    for line in raw.lines() {
        let t = line.trim_start();
        if let Some(rest) = t.strip_prefix("///").or_else(|| t.strip_prefix("//!")) {
            out.push_str(rest);
            out.push('\n');
        }
    }
    out
}

/// Source lines `start..=end` (1-indexed) of `raw`, joined.
fn raw_lines(raw: &str, start: usize, end: usize) -> String {
    let mut out = String::new();
    for (i, line) in raw.lines().enumerate() {
        let n = i + 1;
        if n >= start && n <= end {
            out.push_str(line);
            out.push('\n');
        }
        if n > end {
            break;
        }
    }
    out
}

/// Last source line of the item declaration starting at `line`: the
/// close of its first top-level brace group, or the terminating `;`,
/// whichever comes first.
fn decl_end_line(toks: &[Token], line: usize) -> usize {
    let Some(start) = toks.iter().position(|t| t.line >= line) else {
        return line;
    };
    for (k, t) in toks.iter().enumerate().skip(start) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                ";" => return t.line,
                "{" => return toks[match_brace(toks, k)].line,
                _ => {}
            }
        }
    }
    toks.last().map_or(line, |t| t.line)
}

/// A `dead-pub` candidate with its declaration-region text (for fns the
/// signature up to the body-open line; for types the whole declaration).
struct PubCand {
    name: String,
    line: usize,
    symbol: String,
    file: String,
    region: String,
    live: bool,
}

/// `dead-pub`: `pub` items in lib sources with zero references from any
/// other workspace crate, tests, examples, benches, bins, or doc
/// comments (doctests and intra-doc links). A pub item mentioned in the
/// *declaration* of a live pub item of the same crate is itself live
/// (iterated to a fixpoint) — demoting a type named in a live pub
/// signature would trip `private_interfaces`, so it is not dead.
pub(crate) fn check_dead_pub(lib: &[GraphFile<'_>], refs: &[RefSource<'_>]) -> Vec<Diagnostic> {
    // Per-file identifier sets; the raw text is the fallback (doc
    // comments, doctests) so the common case stays a set lookup.
    let idents: Vec<BTreeSet<&str>> = refs
        .iter()
        .map(|r| {
            r.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.as_str())
                .collect()
        })
        .collect();
    let docs: Vec<String> = refs.iter().map(|r| doc_text(r.raw)).collect();
    let referenced = |name: &str, def_crate: &str| {
        refs.iter().enumerate().any(|(i, r)| {
            if ref_qualifies(r.path, def_crate) {
                idents[i].contains(name) || contains_word(r.raw, name)
            } else {
                contains_word(&docs[i], name)
            }
        })
    };
    let raw_of: BTreeMap<&str, &str> = refs.iter().map(|r| (r.path, r.raw)).collect();

    // Collect candidates per crate so signature liveness propagates
    // across module files.
    let mut by_crate: BTreeMap<String, Vec<PubCand>> = BTreeMap::new();
    for gf in lib {
        let krate = crate::graph::crate_of(gf.path);
        let raw = raw_of.get(gf.path).copied().unwrap_or("");
        let mut push = |name: &str, line: usize, end: usize, symbol: String| {
            if name == "main" || name.starts_with('_') {
                return;
            }
            by_crate.entry(krate.clone()).or_default().push(PubCand {
                name: name.to_string(),
                line,
                symbol,
                file: gf.path.to_string(),
                region: raw_lines(raw, line, end),
                live: referenced(name, &krate),
            });
        };
        for t in &gf.items.types {
            if t.vis == Vis::Pub && t.kind != TypeKind::Mod {
                let info = FnInfo {
                    file: gf.path.to_string(),
                    krate: krate.clone(),
                    file_idx: gf.file_idx,
                    item: crate::items::FnItem {
                        name: t.name.clone(),
                        owner: None,
                        trait_impl: None,
                        is_trait_default: false,
                        vis: t.vis,
                        line: t.line,
                        body: None,
                        body_lines: None,
                        module: t.module.clone(),
                    },
                };
                push(
                    &t.name,
                    t.line,
                    decl_end_line(gf.tokens, t.line),
                    info.symbol(),
                );
            }
        }
        for f in &gf.items.fns {
            if f.vis == Vis::Pub && f.trait_impl.is_none() && !f.is_trait_default {
                let info = FnInfo {
                    file: gf.path.to_string(),
                    krate: krate.clone(),
                    file_idx: gf.file_idx,
                    item: f.clone(),
                };
                let sig_end = f.body.map_or(f.line, |(open, _)| gf.tokens[open].line);
                push(&f.name, f.line, sig_end, info.symbol());
            }
        }
    }

    let mut out = Vec::new();
    for cands in by_crate.values_mut() {
        // Fixpoint: a dead item named in any live item's declaration
        // region becomes live.
        loop {
            let mut newly: Vec<usize> = Vec::new();
            for c in cands.iter().filter(|c| c.live) {
                for (j, d) in cands.iter().enumerate() {
                    if !d.live && contains_word(&c.region, &d.name) {
                        newly.push(j);
                    }
                }
            }
            if newly.is_empty() {
                break;
            }
            for j in newly {
                cands[j].live = true;
            }
        }
        for c in cands.iter().filter(|c| !c.live) {
            out.push(Diagnostic {
                file: c.file.clone(),
                line: c.line,
                rule: "dead-pub",
                message: format!(
                    "pub item `{}` has no references outside its defining \
                     crate's lib sources (other crates, tests, examples, benches, \
                     bins, doc comments, and live pub signatures all checked); \
                     demote to `pub(crate)` or remove",
                    c.name
                ),
                symbol: c.symbol.clone(),
                chain: Vec::new(),
            });
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

// ---------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------

/// Index of the `}` matching the `{` at `open` (or the last token).
fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Marks tokens inside `#[cfg(test)] mod … { … }` spans (and the
/// attribute itself). Test code legitimately unwraps, times, and
/// compares floats — every rule skips it.
pub(crate) fn test_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if is_cfg_test_attr(toks, i) {
            // `#` `[` `cfg` `(` `test` `)` `]` = 7 tokens; then `mod`.
            let after = i + 7;
            if toks.get(after).is_some_and(|t| t.text == "mod") {
                let Some(open) = (after..toks.len()).find(|&k| toks[k].text == "{") else {
                    for m in mask.iter_mut().skip(i) {
                        *m = true;
                    }
                    break;
                };
                let close = match_brace(toks, open);
                for m in mask.iter_mut().take(close + 1).skip(i) {
                    *m = true;
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

fn is_cfg_test_attr(toks: &[Token], i: usize) -> bool {
    let texts = ["#", "[", "cfg", "(", "test", ")", "]"];
    toks.len() >= i + texts.len()
        && texts
            .iter()
            .enumerate()
            .all(|(k, want)| toks[i + k].text == *want)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Graph, GraphFile};
    use crate::items::{parse_items, FileItems};
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        check_file(path, &lex(src))
    }

    struct Owned {
        path: String,
        tokens: Vec<Token>,
        mask: Vec<bool>,
        items: FileItems,
    }

    fn prep(files: &[(&str, &str)]) -> Vec<Owned> {
        files
            .iter()
            .map(|(path, src)| {
                let lexed = lex(src);
                let mask = test_mask(&lexed.tokens);
                let items = parse_items(&lexed.tokens, &mask);
                Owned {
                    path: path.to_string(),
                    tokens: lexed.tokens,
                    mask,
                    items,
                }
            })
            .collect()
    }

    fn graph_files(owned: &[Owned]) -> Vec<GraphFile<'_>> {
        owned
            .iter()
            .enumerate()
            .map(|(i, o)| GraphFile {
                path: &o.path,
                file_idx: i,
                tokens: &o.tokens,
                mask: &o.mask,
                items: &o.items,
            })
            .collect()
    }

    #[test]
    fn lexical_rules_respect_scope() {
        let src = "use std::collections::HashMap;";
        assert_eq!(run("crates/dlflow-sim/src/schedulers/mct.rs", src).len(), 1);
        assert!(run("crates/dlflow-num/src/rational.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_skipped() {
        let src = "
use std::collections::HashMap;
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
}
";
        let d = run("crates/dlflow-sim/src/engine.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn float_eq_catches_literals_both_sides_and_unary_minus() {
        let path = "crates/dlflow-core/src/maxflow.rs";
        assert_eq!(run(path, "if x == 0.0 {}").len(), 1);
        assert_eq!(run(path, "if 1.5 != y {}").len(), 1);
        assert_eq!(run(path, "if x == -2.0 {}").len(), 1);
        assert!(run(path, "if x == 0 {}").is_empty()); // int is fine
        assert!(run(path, "if x <= 0.0 {}").is_empty()); // ordering is fine
    }

    #[test]
    fn float_eq_extends_to_examples_tests_benches() {
        assert_eq!(run("examples/quickstart.rs", "if x == 0.5 {}").len(), 1);
        assert_eq!(run("tests/smoke.rs", "if x == 0.5 {}").len(), 1);
        assert_eq!(
            run("crates/dlflow-bench/benches/bench_sim.rs", "if x == 0.5 {}").len(),
            1
        );
    }

    #[test]
    fn lossy_cast_targets_only() {
        let path = "crates/dlflow-core/src/milestones.rs";
        assert_eq!(run(path, "let x = y as u32;").len(), 1);
        assert_eq!(run(path, "let x = y as usize;").len(), 1);
        assert!(run(path, "let x = y as f64;").is_empty()); // widening idiom
        assert!(run(path, "let x = y as u128;").is_empty());
        assert!(run(path, "let x = n as Foo;").is_empty()); // non-numeric
    }

    #[test]
    fn wallclock_idents_flagged_in_lib_and_relaxed_paths() {
        let src = "use std::time::Instant;";
        assert_eq!(run("crates/dlflow-sim/src/service.rs", src).len(), 1);
        assert_eq!(run("examples/quickstart.rs", src).len(), 1);
        assert_eq!(run("tests/pipeline.rs", src).len(), 1);
        assert_eq!(
            run("crates/dlflow-bench/benches/bench_num.rs", src).len(),
            1
        );
        // The bench harness's own sources remain out of scope.
        assert!(run("crates/dlflow-bench/src/bin/campaign.rs", src).is_empty());
    }

    #[test]
    fn explain_covers_every_rule() {
        for rule in RULE_NAMES {
            assert!(explain(rule).is_some(), "no --explain text for {rule}");
        }
        assert!(explain("no-such-rule").is_none());
    }

    #[test]
    fn transitive_panic_flagged_across_files_with_chain() {
        let owned = prep(&[
            (
                "crates/dlflow-sim/src/engine.rs",
                "impl Engine { pub fn step(&mut self) { settle(self); } }",
            ),
            (
                "crates/dlflow-sim/src/settle.rs",
                "pub fn settle(e: &mut Engine) { e.queue.pop().unwrap(); }",
            ),
        ]);
        let files = graph_files(&owned);
        let g = Graph::build(&files);
        let hot = Reach::compute(&g, &hot_roots(&g));
        let d = check_hot_path_panic(&g, &files, &hot);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].file, "crates/dlflow-sim/src/settle.rs");
        assert_eq!(d[0].symbol, "dlflow-sim::settle::settle");
        assert_eq!(
            d[0].chain,
            [
                "Engine::step".to_string(),
                "settle".to_string(),
                "`unwrap` at crates/dlflow-sim/src/settle.rs:1".to_string()
            ]
        );
        assert!(d[0]
            .render()
            .contains("via Engine::step → settle → `unwrap`"));
    }

    #[test]
    fn sharded_engine_entry_points_are_hot_roots() {
        let owned = prep(&[
            (
                "crates/dlflow-sim/src/shard.rs",
                "impl ShardedEngine { \
                 pub fn push_arrival(&mut self) { route(self); } \
                 pub fn drain(&mut self) { } \
                 pub fn replay_trace(&mut self) { } \
                 pub fn take_completed(&mut self) { } }",
            ),
            (
                "crates/dlflow-sim/src/route.rs",
                "pub fn route(s: &mut ShardedEngine) { s.map.get(0).unwrap(); }",
            ),
        ]);
        let files = graph_files(&owned);
        let g = Graph::build(&files);
        let roots = hot_roots(&g);
        // push_arrival, drain, and replay_trace are roots; the merge-side
        // take_completed (post-simulation) is not.
        assert_eq!(roots.len(), 3, "{roots:?}");
        let hot = Reach::compute(&g, &roots);
        let d = check_hot_path_panic(&g, &files, &hot);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].symbol, "dlflow-sim::route::route");
        assert!(d[0].render().contains("via ShardedEngine::push_arrival"));
    }

    #[test]
    fn unreferenced_helper_is_not_flagged() {
        let owned = prep(&[
            (
                "crates/dlflow-sim/src/engine.rs",
                "impl Engine { pub fn step(&mut self) { } }",
            ),
            (
                "crates/dlflow-sim/src/settle.rs",
                "pub fn settle(e: &mut Engine) { e.queue.pop().unwrap(); }",
            ),
        ]);
        let files = graph_files(&owned);
        let g = Graph::build(&files);
        let hot = Reach::compute(&g, &hot_roots(&g));
        assert!(check_hot_path_panic(&g, &files, &hot).is_empty());
    }

    #[test]
    fn panic_surface_excludes_num_crate() {
        let owned = prep(&[
            (
                "crates/dlflow-sim/src/engine.rs",
                "impl Engine { pub fn step(&mut self) { recip(x); } }",
            ),
            (
                "crates/dlflow-num/src/rational.rs",
                "pub fn recip(x: Rat) -> Rat { x.inv().expect(\"non-zero\") }",
            ),
        ]);
        let files = graph_files(&owned);
        let g = Graph::build(&files);
        let hot = Reach::compute(&g, &hot_roots(&g));
        assert!(check_hot_path_panic(&g, &files, &hot).is_empty());
    }

    #[test]
    fn alloc_flagged_in_own_loop_and_via_loop_context() {
        let owned = prep(&[
            (
                "crates/dlflow-sim/src/engine.rs",
                "impl Engine { pub fn step(&mut self) { for e in es { emit(e); } } }",
            ),
            (
                "crates/dlflow-sim/src/emit.rs",
                "pub fn emit(e: Ev) { let v = e.to_vec(); }",
            ),
        ]);
        let files = graph_files(&owned);
        let g = Graph::build(&files);
        let hot = Reach::compute(&g, &hot_roots(&g));
        let d = check_alloc_in_hot_loop(&g, &files, &hot);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].file, "crates/dlflow-sim/src/emit.rs");
        assert!(d[0].message.contains("reached from inside a hot loop"));
        // Same helper called outside any loop: clean.
        let owned = prep(&[
            (
                "crates/dlflow-sim/src/engine.rs",
                "impl Engine { pub fn step(&mut self) { emit(e); } }",
            ),
            (
                "crates/dlflow-sim/src/emit.rs",
                "pub fn emit(e: Ev) { let v = e.to_vec(); }",
            ),
        ]);
        let files = graph_files(&owned);
        let g = Graph::build(&files);
        let hot = Reach::compute(&g, &hot_roots(&g));
        assert!(check_alloc_in_hot_loop(&g, &files, &hot).is_empty());
    }

    #[test]
    fn float_into_exact_flags_conversion_and_arith() {
        let owned = prep(&[
            (
                "crates/dlflow-core/src/maxflow.rs",
                "pub fn feasible_at(x: f64) -> bool { widen(x) }",
            ),
            (
                "crates/dlflow-core/src/helper.rs",
                "pub fn widen(x: f64) -> bool { let r = Rat::from_f64(x); let y = x * 2.0; true }",
            ),
        ]);
        let files = graph_files(&owned);
        let g = Graph::build(&files);
        let exact = Reach::compute(&g, &exact_roots(&g));
        let d = check_float_into_exact(&g, &files, &exact);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("from_f64"));
        assert!(d[1].message.contains("float arithmetic"));
        // The sanctioned dyadic module may do exactly this: the helper's
        // float arithmetic lives in `rational.rs`, which is exempt.
        let owned = prep(&[
            (
                "crates/dlflow-core/src/maxflow.rs",
                "pub fn feasible_at(x: f64) -> bool { snap(x) }",
            ),
            (
                "crates/dlflow-num/src/rational.rs",
                "pub fn snap(x: f64) -> bool { let y = x * 2.0; true }",
            ),
        ]);
        let files = graph_files(&owned);
        let g = Graph::build(&files);
        let exact = Reach::compute(&g, &exact_roots(&g));
        assert!(check_float_into_exact(&g, &files, &exact).is_empty());
    }

    #[test]
    fn scheduler_contract_missing_hooks_and_name_literal() {
        let owned = prep(&[(
            "crates/dlflow-sim/src/schedulers/mct.rs",
            "impl OnlineScheduler for Mct {
                 fn name(&self) -> String { self.label.clone() }
                 fn plan(&mut self) -> Plan { Plan::empty() }
             }",
        )]);
        let files = graph_files(&owned);
        let g = Graph::build(&files);
        let hooks = Reach::compute(&g, &scheduler_hook_roots(&g));
        let d = check_scheduler_contract(&g, &files, &hooks);
        let msgs: Vec<&str> = d.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(d.len(), 4, "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("`on_arrival`")));
        assert!(msgs.iter().any(|m| m.contains("`on_completion`")));
        assert!(msgs.iter().any(|m| m.contains("`on_platform_change`")));
        assert!(msgs.iter().any(|m| m.contains("string literal")));
    }

    #[test]
    fn scheduler_contract_accepts_complete_impl() {
        let owned = prep(&[(
            "crates/dlflow-sim/src/schedulers/edf.rs",
            "impl OnlineScheduler for Edf {
                 fn name(&self) -> String { format!(\"EDF(k={})\", self.k) }
                 fn on_arrival(&mut self, j: JobId) {}
                 fn on_completion(&mut self, j: JobId) {}
                 fn on_platform_change(&mut self, now: f64, up: &[bool]) {}
                 fn plan(&mut self) -> Plan { Plan::empty() }
             }",
        )]);
        let files = graph_files(&owned);
        let g = Graph::build(&files);
        let hooks = Reach::compute(&g, &scheduler_hook_roots(&g));
        assert!(check_scheduler_contract(&g, &files, &hooks).is_empty());
    }

    #[test]
    fn dead_pub_flags_unreferenced_items_only() {
        let owned = prep(&[
            (
                "crates/dlflow-core/src/gantt.rs",
                "pub fn used() {} pub fn orphan() {} pub struct DeadType;",
            ),
            ("tests/smoke.rs", "fn t() { used(); }"),
        ]);
        let files = graph_files(&owned);
        let lib: Vec<GraphFile<'_>> = files
            .iter()
            .filter(|f| crate::graph::is_lib_source(f.path))
            .map(|f| GraphFile { ..*f })
            .collect();
        let refs: Vec<RefSource<'_>> = owned
            .iter()
            .map(|o| RefSource {
                path: &o.path,
                tokens: &o.tokens,
                raw: "",
            })
            .collect();
        let d = check_dead_pub(&lib, &refs);
        let names: Vec<&str> = d.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(d.len(), 2, "{names:?}");
        assert!(names.iter().any(|m| m.contains("`orphan`")));
        assert!(names.iter().any(|m| m.contains("`DeadType`")));
    }

    #[test]
    fn dead_pub_counts_doc_comment_references() {
        let owned = prep(&[("crates/dlflow-core/src/gantt.rs", "pub fn doc_only() {}")]);
        let files = graph_files(&owned);
        let refs = [RefSource {
            path: "tests/smoke.rs",
            tokens: &[],
            raw: "//! See [`doc_only`] for details.",
        }];
        assert!(check_dead_pub(&files, &refs).is_empty());
        // Substring matches do not count: word boundaries are required.
        let refs = [RefSource {
            path: "tests/smoke.rs",
            tokens: &[],
            raw: "fn doc_only_extended() {}",
        }];
        assert_eq!(check_dead_pub(&files, &refs).len(), 1);
    }

    #[test]
    fn render_includes_chain_line() {
        let d = Diagnostic {
            file: "crates/dlflow-sim/src/engine.rs".into(),
            line: 412,
            rule: "hot-path-panic",
            message: "`unwrap` can panic".into(),
            symbol: "dlflow-sim::engine::Engine::settle".into(),
            chain: vec![
                "Engine::step".into(),
                "Engine::settle".into(),
                "`unwrap` at crates/dlflow-sim/src/engine.rs:412".into(),
            ],
        };
        assert_eq!(
            d.render(),
            "crates/dlflow-sim/src/engine.rs:412: [hot-path-panic] `unwrap` can panic\n    \
             via Engine::step → Engine::settle → `unwrap` at crates/dlflow-sim/src/engine.rs:412"
        );
    }
}
