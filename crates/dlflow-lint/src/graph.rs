//! The workspace symbol table and conservative call graph.
//!
//! Nodes are every function parsed out of the lib sources (crate `src/`
//! trees — tests, examples, and benches never sit *under* the hot path,
//! so they stay out of the graph). Edges come from call-shaped token
//! patterns in function bodies, resolved by **name + receiver shape**:
//!
//! * `self.m(…)` — methods named `m` on the enclosing `impl` type if
//!   any exist, otherwise any method named `m`;
//! * `expr.m(…)` — every method named `m` whose self type *or* trait
//!   is named somewhere in the calling file (the receiver's type is
//!   unknown to a lexical pass, so all witnessed candidates stay in:
//!   an over-approximation — this is what makes `dyn OnlineScheduler`
//!   dispatch land on every policy. The witness requirement keeps std
//!   name collisions like `Vec::drain` vs `Engine::drain` from
//!   stitching unrelated subsystems together);
//! * `Q::m(…)` — methods of type `Q`, else free functions in module
//!   `Q`;
//! * `m(…)` — every free function named `m` in the workspace.
//!
//! Calls that resolve to no workspace function (std/vendor calls,
//! `Some(…)`-style constructors) are **recorded** per caller as
//! [`Graph::unresolved`], never silently dropped — `--json` reports the
//! count so a resolution regression is visible.

use crate::items::{FileItems, FnItem};
use crate::lexer::{TokKind, Token};
use std::collections::BTreeMap;

/// Index of a function in [`Graph::fns`].
pub type FnId = usize;

/// One function in the workspace, with its location.
#[derive(Clone, Debug)]
pub struct FnInfo {
    /// Workspace-relative file path.
    pub file: String,
    /// Crate the file belongs to (`dlflow-sim`, `dlflow`, …).
    pub krate: String,
    /// Index of the file in the analyzed-file list.
    pub file_idx: usize,
    /// The parsed item.
    pub item: FnItem,
}

impl FnInfo {
    /// Display name for witness chains: `Engine::step` or `settle`.
    pub fn display(&self) -> String {
        match &self.item.owner {
            Some(owner) => format!("{owner}::{}", self.item.name),
            None => self.item.name.clone(),
        }
    }

    /// Stable symbol for baselines: `dlflow-sim::engine::Engine::step`.
    pub fn symbol(&self) -> String {
        let mut s = format!("{}::{}", self.krate, file_module(&self.file));
        for m in &self.item.module {
            s.push_str("::");
            s.push_str(m);
        }
        if let Some(owner) = &self.item.owner {
            s.push_str("::");
            s.push_str(owner);
        }
        s.push_str("::");
        s.push_str(&self.item.name);
        s
    }
}

/// A resolved call edge.
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    /// The callee.
    pub callee: FnId,
    /// 1-based line of the call site in the caller's file.
    pub line: usize,
    /// True when the call site sits inside a `for`/`while`/`loop` body
    /// of the caller.
    pub in_loop: bool,
}

/// A call that resolved to no workspace function.
#[derive(Clone, Debug)]
pub struct UnresolvedCall {
    /// Callee name as written.
    pub name: String,
    /// 1-based line of the call site.
    pub line: usize,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// Every function, ordered by (file, source position) — the order
    /// is deterministic because the file list is sorted.
    pub fns: Vec<FnInfo>,
    /// Outgoing resolved edges per function, in body order.
    pub edges: Vec<Vec<Edge>>,
    /// Unresolved calls per function, in body order.
    pub unresolved: Vec<Vec<UnresolvedCall>>,
}

/// Derives the crate name from a workspace-relative path.
pub fn crate_of(path: &str) -> String {
    if let Some(rest) = path.strip_prefix("crates/") {
        if let Some((name, _)) = rest.split_once('/') {
            return name.to_string();
        }
    }
    if path.starts_with("src/") {
        return "dlflow".to_string();
    }
    // examples/, tests/, benches of the root — named for their dir.
    path.split('/').next().unwrap_or("").to_string()
}

/// Module name of a file: the stem, or the directory for `mod.rs`.
pub fn file_module(path: &str) -> String {
    let parts: Vec<&str> = path.split('/').collect();
    let stem = parts
        .last()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("");
    if stem == "mod" && parts.len() >= 2 {
        parts[parts.len() - 2].to_string()
    } else {
        stem.to_string()
    }
}

/// True for lib sources that join the call graph (crate `src/` trees
/// and the façade's `src/`, excluding bin entry points — a bin's `main`
/// can never be *called from* the hot path).
pub fn is_lib_source(path: &str) -> bool {
    let under_src = path.starts_with("src/")
        || (path.starts_with("crates/") && path.split('/').nth(2) == Some("src"));
    under_src && !path.contains("/bin/") && !path.ends_with("/main.rs")
}

/// Keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "let", "in", "move", "ref", "else", "as",
    "use", "pub", "where", "impl", "fn", "dyn", "mut", "break", "continue", "unsafe", "box",
    "await", "crate", "super", "Self", "self",
];

/// One file's inputs to the graph build.
pub struct GraphFile<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// Index in the analyzed-file list.
    pub file_idx: usize,
    /// Lexed tokens.
    pub tokens: &'a [Token],
    /// `#[cfg(test)]` mask.
    pub mask: &'a [bool],
    /// Parsed items.
    pub items: &'a FileItems,
}

impl Graph {
    /// Builds the graph over the given lib files. Resolution is
    /// deterministic: candidate lists come from `BTreeMap`s and edges
    /// follow body order.
    pub fn build(files: &[GraphFile<'_>]) -> Graph {
        let mut g = Graph::default();
        for f in files {
            for item in &f.items.fns {
                g.fns.push(FnInfo {
                    file: f.path.to_string(),
                    krate: crate_of(f.path),
                    file_idx: f.file_idx,
                    item: item.clone(),
                });
            }
        }

        // Name indexes. Trait-default bodies are callable targets too
        // (a `self.hook()` can land on an un-overridden default).
        let mut free_by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut methods_by_owner: BTreeMap<(String, String), Vec<FnId>> = BTreeMap::new();
        let mut free_by_module: BTreeMap<(String, String), Vec<FnId>> = BTreeMap::new();
        for (id, f) in g.fns.iter().enumerate() {
            if f.item.body.is_none() {
                continue; // bodyless trait signature: nothing to run
            }
            match &f.item.owner {
                Some(owner) => {
                    methods_by_name
                        .entry(f.item.name.clone())
                        .or_default()
                        .push(id);
                    methods_by_owner
                        .entry((owner.clone(), f.item.name.clone()))
                        .or_default()
                        .push(id);
                }
                None => {
                    free_by_name
                        .entry(f.item.name.clone())
                        .or_default()
                        .push(id);
                    // Qualified-by-module calls (`module::helper(…)`):
                    // innermost inline mod, else the file's module name.
                    let module = f
                        .item
                        .module
                        .last()
                        .cloned()
                        .unwrap_or_else(|| file_module(&f.file));
                    free_by_module
                        .entry((module, f.item.name.clone()))
                        .or_default()
                        .push(id);
                }
            }
        }

        g.edges = vec![Vec::new(); g.fns.len()];
        g.unresolved = vec![Vec::new(); g.fns.len()];

        // Type witnesses for dyn-dispatch resolution: a `.m(…)` call can
        // only land on an impl whose self type or trait is named
        // somewhere in the calling file. Without this, std name
        // collisions (`Vec::drain` vs `Engine::drain`) stitch unrelated
        // subsystems together and poison reachability.
        let idents_by_file: BTreeMap<usize, std::collections::BTreeSet<&str>> = files
            .iter()
            .map(|f| {
                (
                    f.file_idx,
                    f.tokens
                        .iter()
                        .filter(|t| t.kind == TokKind::Ident)
                        .map(|t| t.text.as_str())
                        .collect(),
                )
            })
            .collect();
        let owner_of: Vec<(Option<String>, Option<String>)> = g
            .fns
            .iter()
            .map(|f| (f.item.owner.clone(), f.item.trait_impl.clone()))
            .collect();

        // Map (file_idx, fn position) back to ids to iterate bodies.
        let fn_ids: Vec<FnId> = (0..g.fns.len()).collect();
        for &id in &fn_ids {
            let info = &g.fns[id];
            let Some((lo, hi)) = info.item.body else {
                continue;
            };
            let file = files
                .iter()
                .find(|f| f.file_idx == info.file_idx)
                .expect("graph file for fn");
            let toks = file.tokens;
            let loops = loop_spans(toks, lo, hi);
            let owner = info.item.owner.clone();
            let mut edges = Vec::new();
            let mut unresolved = Vec::new();
            for i in lo..hi.min(toks.len()) {
                let t = &toks[i];
                if t.kind != TokKind::Ident
                    || toks.get(i + 1).is_none_or(|n| n.text != "(")
                    || NON_CALL_KEYWORDS.contains(&t.text.as_str())
                {
                    continue;
                }
                let prev = i.checked_sub(1).map(|k| toks[k].text.as_str());
                if prev == Some("fn") {
                    continue; // inner fn definition, not a call
                }
                let name = t.text.as_str();
                let in_loop = loops.iter().any(|&(a, b)| a <= i && i < b);
                let candidates: Vec<FnId> = match prev {
                    Some(".") => {
                        let self_recv = i >= 2
                            && toks[i - 2].text == "self"
                            && i.checked_sub(3).map(|k| toks[k].text.as_str()) != Some(".");
                        let owned = owner
                            .as_ref()
                            .and_then(|o| methods_by_owner.get(&(o.clone(), name.to_string())));
                        match (self_recv, owned) {
                            (true, Some(ids)) => ids.clone(),
                            _ => {
                                let witnesses = &idents_by_file[&info.file_idx];
                                methods_by_name
                                    .get(name)
                                    .cloned()
                                    .unwrap_or_default()
                                    .into_iter()
                                    .filter(|&c| {
                                        let (owner, tr) = &owner_of[c];
                                        owner.as_deref().is_some_and(|o| witnesses.contains(o))
                                            || tr.as_deref().is_some_and(|t| witnesses.contains(t))
                                    })
                                    .collect()
                            }
                        }
                    }
                    Some("::") => {
                        let q = i.checked_sub(2).map(|k| toks[k].text.as_str());
                        match q {
                            Some(q) => {
                                let key = (q.to_string(), name.to_string());
                                methods_by_owner
                                    .get(&key)
                                    .or_else(|| free_by_module.get(&key))
                                    .cloned()
                                    .unwrap_or_default()
                            }
                            None => Vec::new(),
                        }
                    }
                    _ => free_by_name.get(name).cloned().unwrap_or_default(),
                };
                if candidates.is_empty() {
                    unresolved.push(UnresolvedCall {
                        name: name.to_string(),
                        line: t.line,
                    });
                } else {
                    for callee in candidates {
                        if callee != id {
                            edges.push(Edge {
                                callee,
                                line: t.line,
                                in_loop,
                            });
                        }
                    }
                }
            }
            g.edges[id] = edges;
            g.unresolved[id] = unresolved;
        }
        g
    }

    /// Total unresolved call sites (reported in `--json`).
    pub fn n_unresolved(&self) -> usize {
        self.unresolved.iter().map(Vec::len).sum()
    }

    /// Ids of functions matching a predicate, in graph order.
    pub fn find(&self, pred: impl Fn(&FnInfo) -> bool) -> Vec<FnId> {
        (0..self.fns.len())
            .filter(|&i| pred(&self.fns[i]))
            .collect()
    }
}

/// Token spans (half-open) of `for`/`while`/`loop` bodies inside
/// `[lo, hi)`, including nested ones.
pub fn loop_spans(toks: &[Token], lo: usize, hi: usize) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = lo;
    let hi = hi.min(toks.len());
    while i < hi {
        let t = &toks[i];
        if t.kind == TokKind::Ident && matches!(t.text.as_str(), "for" | "while" | "loop") {
            // Loop body = next `{` (loop headers cannot contain bare
            // struct literals, so this is unambiguous).
            let Some(open) = (i..hi).find(|&k| toks[k].text == "{") else {
                break;
            };
            let mut depth = 0usize;
            let mut close = hi;
            for (k, tok) in toks.iter().enumerate().take(hi).skip(open) {
                match tok.text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            close = k;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            spans.push((open + 1, close));
            // Continue *inside* the loop too, to catch nested loops.
            i = open + 1;
        } else {
            i += 1;
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;
    use crate::lexer::lex;
    use crate::rules::test_mask;

    struct Owned {
        path: String,
        tokens: Vec<Token>,
        mask: Vec<bool>,
        items: FileItems,
    }

    fn prep(files: &[(&str, &str)]) -> Vec<Owned> {
        files
            .iter()
            .map(|(path, src)| {
                let lexed = lex(src);
                let mask = test_mask(&lexed.tokens);
                let items = parse_items(&lexed.tokens, &mask);
                Owned {
                    path: path.to_string(),
                    tokens: lexed.tokens,
                    mask,
                    items,
                }
            })
            .collect()
    }

    fn build(owned: &[Owned]) -> Graph {
        let files: Vec<GraphFile<'_>> = owned
            .iter()
            .enumerate()
            .map(|(i, o)| GraphFile {
                path: &o.path,
                file_idx: i,
                tokens: &o.tokens,
                mask: &o.mask,
                items: &o.items,
            })
            .collect();
        Graph::build(&files)
    }

    fn id_of(g: &Graph, name: &str) -> FnId {
        g.find(|f| f.item.name == name)[0]
    }

    #[test]
    fn bare_calls_resolve_across_files() {
        let owned = prep(&[
            (
                "crates/dlflow-sim/src/engine.rs",
                "pub fn step() { helper(); }",
            ),
            ("crates/dlflow-sim/src/util.rs", "pub fn helper() { }"),
        ]);
        let g = build(&owned);
        let step = id_of(&g, "step");
        let helper = id_of(&g, "helper");
        assert_eq!(g.edges[step].len(), 1);
        assert_eq!(g.edges[step][0].callee, helper);
        assert!(!g.edges[step][0].in_loop);
    }

    #[test]
    fn self_method_prefers_own_impl() {
        let src = "
struct A; struct B;
impl A { fn go(&self) { self.m(); } fn m(&self) {} }
impl B { fn m(&self) {} }
";
        let owned = prep(&[("crates/dlflow-sim/src/x.rs", src)]);
        let g = build(&owned);
        let go = id_of(&g, "go");
        // `self.m()` resolves only to A::m, not B::m.
        assert_eq!(g.edges[go].len(), 1);
        assert_eq!(
            g.fns[g.edges[go][0].callee].item.owner.as_deref(),
            Some("A")
        );
    }

    #[test]
    fn dotted_method_fans_out_to_all_candidates() {
        let src = "
struct A; struct B;
impl A { fn plan(&self) {} }
impl B { fn plan(&self) {} }
fn drive(p: &dyn P) { p.plan(); }
";
        let owned = prep(&[("crates/dlflow-sim/src/x.rs", src)]);
        let g = build(&owned);
        let drive = id_of(&g, "drive");
        assert_eq!(g.edges[drive].len(), 2, "dyn dispatch over-approximates");
    }

    #[test]
    fn unresolved_calls_are_recorded() {
        let owned = prep(&[(
            "crates/dlflow-sim/src/x.rs",
            "fn f() { Vec::with_capacity(4); std_only(); }",
        )]);
        let g = build(&owned);
        let f = id_of(&g, "f");
        assert!(g.edges[f].is_empty());
        let names: Vec<&str> = g.unresolved[f].iter().map(|u| u.name.as_str()).collect();
        assert_eq!(names, ["with_capacity", "std_only"]);
        assert_eq!(g.n_unresolved(), 2);
    }

    #[test]
    fn loop_spans_mark_call_sites() {
        let owned = prep(&[(
            "crates/dlflow-sim/src/x.rs",
            "fn f() { before(); for x in xs { inside(); } after(); } fn before() {} fn inside() {} fn after() {}",
        )]);
        let g = build(&owned);
        let f = id_of(&g, "f");
        let by_name: Vec<(&str, bool)> = g.edges[f]
            .iter()
            .map(|e| (g.fns[e.callee].item.name.as_str(), e.in_loop))
            .collect();
        assert_eq!(
            by_name,
            [("before", false), ("inside", true), ("after", false)]
        );
    }

    #[test]
    fn qualified_calls_resolve_by_type_then_module() {
        let src = "
struct Engine;
impl Engine { fn make() {} }
fn f() { Engine::make(); util::free_helper(); }
mod util { pub fn free_helper() {} }
";
        let owned = prep(&[("crates/dlflow-sim/src/x.rs", src)]);
        let g = build(&owned);
        let f = id_of(&g, "f");
        assert_eq!(g.edges[f].len(), 2, "{:?}", g.unresolved[f]);
    }

    #[test]
    fn symbols_and_displays_are_stable() {
        let owned = prep(&[(
            "crates/dlflow-sim/src/schedulers/mod.rs",
            "struct Mct; impl Mct { pub fn plan(&self) {} }",
        )]);
        let g = build(&owned);
        let plan = id_of(&g, "plan");
        assert_eq!(g.fns[plan].display(), "Mct::plan");
        assert_eq!(g.fns[plan].symbol(), "dlflow-sim::schedulers::Mct::plan");
    }
}
