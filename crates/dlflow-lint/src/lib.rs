//! # dlflow-lint — workspace static analysis for dlflow's invariants
//!
//! The repo's two load-bearing properties — byte-identical deterministic
//! reports (campaign parallel-vs-serial, engine-vs-dense parity) and
//! exact-arithmetic correctness (the Theorem-2 yardstick) — are enforced
//! at runtime by parity tests. This crate makes them *source-level*
//! invariants checked on every commit: a self-contained analysis driver
//! (a small Rust [`lexer`] plus a path-scoped [`rules`] engine, no
//! external dependencies) run over the whole workspace by the
//! `dlflow-lint` bin.
//!
//! Six rules, each grounded in a real repo hazard (catalog with
//! rationale and examples in `docs/LINTS.md`):
//!
//! | rule | guards |
//! |---|---|
//! | `hash-iter-determinism` | byte-stable reports (no `HashMap`/`HashSet` in deterministic paths) |
//! | `no-wallclock-entropy`  | replayability (no `Instant::now`/`SystemTime`/ambient RNG in lib code) |
//! | `hot-path-panic`        | panic-free engine/scheduler event paths |
//! | `float-eq`              | exactness (no float `==`/`!=` outside the dyadic modules) |
//! | `lossy-cast`            | exact arithmetic (no truncating `as` casts in num/core) |
//! | `alloc-in-hot-loop`     | allocation-lean per-event hot path (ROADMAP item 2) |
//!
//! Findings can be suppressed inline with a justified pragma — e.g. a
//! trailing `` `dlflint:allow(float-eq, "fract()==0 is exact")` `` line
//! comment — and residual accepted findings live in a committed ratchet
//! [`baseline`] (`lint-baseline.json`) whose counts may only go down.
//!
//! ```
//! use dlflow_lint::lint_source;
//!
//! let findings = lint_source(
//!     "crates/dlflow-sim/src/schedulers/mct.rs",
//!     "use std::collections::HashMap;",
//! );
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "hash-iter-determinism");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod walk;

use baseline::Baseline;
use rules::Diagnostic;
use std::path::Path;

/// Lints one source file: lexes, runs every scoped rule, then applies
/// inline pragmas. Malformed or unknown-rule pragmas surface as
/// `bad-pragma` findings (which pragmas cannot suppress). `path` is the
/// workspace-relative path used for rule scoping and in diagnostics.
pub fn lint_source(path: &str, source: &str) -> Vec<Diagnostic> {
    let lexed = lexer::lex(source);
    let mut findings = rules::check_file(path, &lexed);

    // Pragma pass: drop findings a well-formed pragma covers; report the
    // pragmas that are malformed or name an unknown rule.
    let mut bad = Vec::new();
    for p in &lexed.pragmas {
        if let Some(err) = &p.error {
            bad.push((p.line, err.clone()));
            continue;
        }
        if !rules::RULE_NAMES.contains(&p.rule.as_str()) || p.rule == "bad-pragma" {
            bad.push((p.line, format!("pragma names unknown rule `{}`", p.rule)));
            continue;
        }
        let target = p.applies_to_line();
        findings.retain(|d| !(d.rule == p.rule && d.line == target));
    }
    for (line, message) in bad {
        findings.push(Diagnostic {
            file: path.to_string(),
            line,
            rule: "bad-pragma",
            message,
        });
    }
    findings.sort();
    findings
}

/// The result of linting a whole tree.
#[derive(Debug, Default)]
pub struct LintResult {
    /// Every finding, sorted by `(file, line, rule)`.
    pub findings: Vec<Diagnostic>,
    /// Files scanned (workspace-relative, sorted).
    pub n_files: usize,
}

impl LintResult {
    /// Per-`(rule, file)` finding counts in ratchet-baseline shape.
    pub fn counts(&self) -> Baseline {
        let mut out = Baseline::new();
        for d in &self.findings {
            *out.entry(d.rule.to_string())
                .or_default()
                .entry(d.file.clone())
                .or_insert(0) += 1;
        }
        out
    }

    /// Machine-readable report: findings plus the count map, rendered as
    /// deterministic JSON (same hand-rolled style as the campaign
    /// reports — no serde in the offline dependency set).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"findings\": [\n");
        for (i, d) in self.findings.iter().enumerate() {
            let comma = if i + 1 == self.findings.len() {
                ""
            } else {
                ","
            };
            s.push_str(&format!(
                "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{comma}\n",
                d.file,
                d.line,
                d.rule,
                d.message.replace('\\', "\\\\").replace('"', "\\\""),
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!("  \"n_files\": {},\n", self.n_files));
        s.push_str(&format!("  \"n_findings\": {},\n", self.findings.len()));
        let counts = baseline::to_json(&self.counts());
        let counts = counts.trim_end();
        let indented = counts
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i == 0 {
                    l.to_string()
                } else {
                    format!("  {l}")
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        s.push_str(&format!("  \"counts\": {indented}\n}}\n"));
        s
    }
}

/// Lints every Rust file under `root` (see [`walk::rust_files`] for
/// what is scanned) and returns the aggregated findings.
pub fn run_lint(root: &Path) -> Result<LintResult, String> {
    let files = walk::rust_files(root)?;
    let mut result = LintResult {
        findings: Vec::new(),
        n_files: files.len(),
    };
    for rel in &files {
        let full = root.join(rel.replace('/', std::path::MAIN_SEPARATOR_STR));
        let source = std::fs::read_to_string(&full)
            .map_err(|e| format!("cannot read {}: {e}", full.display()))?;
        result.findings.extend(lint_source(rel, &source));
    }
    result.findings.sort();
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_pragma_suppresses_same_line() {
        let src = "let x = y as u32; // dlflint:allow(lossy-cast, \"y < 2^32 by construction\")";
        assert!(lint_source("crates/dlflow-core/src/gantt.rs", src).is_empty());
    }

    #[test]
    fn own_line_pragma_suppresses_next_line() {
        let src = "\
// dlflint:allow(lossy-cast, \"bounded\")
let x = y as u32;
";
        assert!(lint_source("crates/dlflow-core/src/gantt.rs", src).is_empty());
    }

    #[test]
    fn pragma_for_wrong_rule_does_not_suppress() {
        let src = "let x = y as u32; // dlflint:allow(float-eq, \"wrong rule\")";
        let d = lint_source("crates/dlflow-core/src/gantt.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "lossy-cast");
    }

    #[test]
    fn pragma_does_not_leak_to_other_lines() {
        let src = "\
let a = y as u32; // dlflint:allow(lossy-cast, \"bounded\")
let b = z as u32;
";
        let d = lint_source("crates/dlflow-core/src/gantt.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn malformed_and_unknown_pragmas_are_findings() {
        let missing = lint_source("src/lib.rs", "// dlflint:allow(float-eq)");
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].rule, "bad-pragma");
        let unknown = lint_source("src/lib.rs", "// dlflint:allow(no-such-rule, \"why\")");
        assert_eq!(unknown.len(), 1);
        assert!(unknown[0].message.contains("unknown rule"));
    }

    #[test]
    fn counts_group_by_rule_and_file() {
        let src = "let a = x as u32; let b = y as u8;";
        let res = LintResult {
            findings: lint_source("crates/dlflow-core/src/gantt.rs", src),
            n_files: 1,
        };
        let counts = res.counts();
        assert_eq!(counts["lossy-cast"]["crates/dlflow-core/src/gantt.rs"], 2);
    }

    #[test]
    fn json_report_escapes_quotes() {
        let res = LintResult {
            findings: vec![rules::Diagnostic {
                file: "a.rs".into(),
                line: 1,
                rule: "float-eq",
                message: "has \"quotes\"".into(),
            }],
            n_files: 1,
        };
        let json = res.to_json();
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\"n_findings\": 1"));
    }
}
