//! # dlflow-lint — workspace static analysis for dlflow's invariants
//!
//! The repo's two load-bearing properties — byte-identical deterministic
//! reports (campaign parallel-vs-serial, engine-vs-dense parity) and
//! exact-arithmetic correctness (the Theorem-2 yardstick) — are enforced
//! at runtime by parity tests. This crate makes them *source-level*
//! invariants checked on every commit: a self-contained analysis driver
//! (no external dependencies) run over the whole workspace by the
//! `dlflow-lint` bin.
//!
//! Since PR 7 the analyzer is semantic, not just lexical: the [`lexer`]
//! feeds an item parser ([`items`]), a workspace symbol table and
//! conservative call graph ([`graph`]), and a reachability pass
//! ([`reach`]) whose witness chains appear in diagnostics. Ten rules
//! (catalog with rationale in `docs/LINTS.md`, or `--explain <rule>`):
//!
//! | rule | guards |
//! |---|---|
//! | `hash-iter-determinism` | byte-stable reports (no `HashMap`/`HashSet` in deterministic paths) |
//! | `no-wallclock-entropy`  | replayability (no `Instant::now`/`SystemTime`/ambient RNG outside dlflow-bench) |
//! | `hot-path-panic`        | panic-free event paths, **transitive** over the call graph |
//! | `float-eq`              | exactness (no float `==`/`!=` outside the dyadic modules) |
//! | `lossy-cast`            | exact arithmetic (no truncating `as` casts in num/core) |
//! | `alloc-in-hot-loop`     | allocation-lean hot path, **transitive** with loop-context propagation |
//! | `float-into-exact`      | no f64 rounding on paths reachable from exact entry points |
//! | `scheduler-contract`    | every `OnlineScheduler` impl writes all hooks; `name()` is a literal |
//! | `dead-pub`              | no unreferenced `pub` API surface in lib crates |
//! | `bad-pragma`            | suppressions are well-formed and reasoned |
//!
//! Findings can be suppressed inline with a justified pragma — e.g. a
//! trailing `` `dlflint:allow(float-eq, "fract()==0 is exact")` `` line
//! comment. Residual accepted findings live in a committed ratchet
//! [`baseline`] (`lint-baseline.json`, keyed by rule + symbol since v2)
//! whose counts may only go down — and which is empty on this tree.
//!
//! ```
//! use dlflow_lint::lint_source;
//!
//! let findings = lint_source(
//!     "crates/dlflow-sim/src/schedulers/mct.rs",
//!     "use std::collections::HashMap;",
//! );
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "hash-iter-determinism");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod reach;
pub mod rules;
pub mod walk;

use baseline::Counts;
use graph::{crate_of, file_module, is_lib_source, FnInfo, Graph, GraphFile};
use items::FileItems;
use reach::Reach;
use rules::Diagnostic;
use std::path::Path;
use std::time::Instant;

/// One file handed to [`analyze`]: a workspace-relative path (forward
/// slashes — it drives rule scoping) and the file's contents.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path.
    pub path: String,
    /// Raw file contents.
    pub source: String,
}

/// The result of analyzing a tree.
#[derive(Debug, Default)]
pub struct LintResult {
    /// Every finding, sorted by `(file, line, rule, …)`.
    pub findings: Vec<Diagnostic>,
    /// Files scanned.
    pub n_files: usize,
    /// Items parsed (functions + named type-level items).
    pub n_items: usize,
    /// Call sites that resolved to no workspace function (recorded,
    /// never dropped — a resolution regression shows up here).
    pub n_unresolved: usize,
    /// Per-rule wall time in microseconds, in execution order. Only
    /// rendered under `--timing`/`--json --timing` so default output
    /// stays byte-identical across runs.
    pub timings_us: Vec<(&'static str, u128)>,
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl LintResult {
    /// Per-`(rule, symbol)` finding counts — the baseline-v2 shape.
    pub fn counts(&self) -> Counts {
        let mut out = Counts::new();
        for d in &self.findings {
            *out.entry(d.rule.to_string())
                .or_default()
                .entry(d.symbol.clone())
                .or_insert(0) += 1;
        }
        out
    }

    /// Per-`(rule, file)` finding counts — what legacy v1 baselines are
    /// diffed against.
    pub fn counts_by_file(&self) -> Counts {
        let mut out = Counts::new();
        for d in &self.findings {
            *out.entry(d.rule.to_string())
                .or_default()
                .entry(d.file.clone())
                .or_insert(0) += 1;
        }
        out
    }

    /// Machine-readable report: findings (with symbol and witness
    /// chain), scan counters, and per-rule totals, rendered as
    /// deterministic JSON (hand-rolled — no serde in the offline
    /// dependency set). Per-rule timings are included only when
    /// `timing` is set, so the default output is byte-identical across
    /// runs.
    pub fn to_json(&self, timing: bool) -> String {
        let mut s = String::from("{\n  \"findings\": [\n");
        for (i, d) in self.findings.iter().enumerate() {
            let comma = if i + 1 == self.findings.len() {
                ""
            } else {
                ","
            };
            let chain = d
                .chain
                .iter()
                .map(|c| format!("\"{}\"", escape(c)))
                .collect::<Vec<_>>()
                .join(", ");
            s.push_str(&format!(
                "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"symbol\": \"{}\", \
                 \"message\": \"{}\", \"chain\": [{chain}]}}{comma}\n",
                d.file,
                d.line,
                d.rule,
                escape(&d.symbol),
                escape(&d.message),
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!("  \"n_files\": {},\n", self.n_files));
        s.push_str(&format!("  \"n_items\": {},\n", self.n_items));
        s.push_str(&format!("  \"n_unresolved\": {},\n", self.n_unresolved));
        s.push_str(&format!("  \"n_findings\": {},\n", self.findings.len()));
        let mut totals: Counts = Counts::new();
        for d in &self.findings {
            *totals
                .entry(d.rule.to_string())
                .or_default()
                .entry(String::new())
                .or_insert(0) += 1;
        }
        s.push_str("  \"counts\": {");
        let mut first = true;
        for (rule, inner) in &totals {
            let n: usize = inner.values().sum();
            if !first {
                s.push_str(", ");
            }
            first = false;
            s.push_str(&format!("\"{rule}\": {n}"));
        }
        s.push('}');
        if timing {
            s.push_str(",\n  \"timings_us\": {");
            for (i, (rule, us)) in self.timings_us.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("\"{rule}\": {us}"));
            }
            s.push('}');
        }
        s.push_str("\n}\n");
        s
    }
}

struct Prep {
    path: String,
    source: String,
    lexed: lexer::LexedFile,
    mask: Vec<bool>,
    items: FileItems,
}

fn timed<T>(
    timings: &mut Vec<(&'static str, u128)>,
    name: &'static str,
    f: impl FnOnce() -> T,
) -> T {
    let t0 = Instant::now();
    let out = f();
    timings.push((name, t0.elapsed().as_micros()));
    out
}

/// File-level fallback symbol for findings outside any function.
fn file_symbol(path: &str) -> String {
    format!("{}::{}", crate_of(path), file_module(path))
}

/// Analyzes a set of source files as one workspace: lexes and parses
/// items per file, runs the lexical rules, builds the call graph over
/// lib sources, runs the reachability rules, then applies pragmas.
/// Output is a pure function of the file *set* — the list is sorted by
/// path first, so discovery order cannot leak into results.
pub fn analyze(mut files: Vec<SourceFile>) -> LintResult {
    files.sort_by(|a, b| a.path.cmp(&b.path));

    let mut timings: Vec<(&'static str, u128)> = Vec::new();
    let preps: Vec<Prep> = timed(&mut timings, "frontend", || {
        files
            .into_iter()
            .map(|f| {
                let lexed = lexer::lex(&f.source);
                let mask = rules::test_mask(&lexed.tokens);
                let items = items::parse_items(&lexed.tokens, &mask);
                Prep {
                    path: f.path,
                    source: f.source,
                    lexed,
                    mask,
                    items,
                }
            })
            .collect()
    });
    let n_items: usize = preps
        .iter()
        .map(|p| p.items.fns.len() + p.items.types.len())
        .sum();

    let mut findings: Vec<Diagnostic> = Vec::new();
    let lexical = |timings: &mut Vec<(&'static str, u128)>,
                   name: &'static str,
                   rule: fn(&str, &[lexer::Token], &[bool]) -> Vec<Diagnostic>,
                   findings: &mut Vec<Diagnostic>| {
        timed(timings, name, || {
            for p in &preps {
                findings.extend(rule(&p.path, &p.lexed.tokens, &p.mask));
            }
        });
    };
    lexical(
        &mut timings,
        "hash-iter-determinism",
        rules::check_hash_iter,
        &mut findings,
    );
    lexical(
        &mut timings,
        "no-wallclock-entropy",
        rules::check_wallclock,
        &mut findings,
    );
    lexical(
        &mut timings,
        "float-eq",
        rules::check_float_eq,
        &mut findings,
    );
    lexical(
        &mut timings,
        "lossy-cast",
        rules::check_lossy_cast,
        &mut findings,
    );

    // The call graph covers lib sources only (tests/examples/benches
    // never sit under the hot path); dead-pub reads references from
    // every scanned file.
    let lib: Vec<GraphFile<'_>> = preps
        .iter()
        .enumerate()
        .filter(|(_, p)| is_lib_source(&p.path))
        .map(|(i, p)| GraphFile {
            path: &p.path,
            file_idx: i,
            tokens: &p.lexed.tokens,
            mask: &p.mask,
            items: &p.items,
        })
        .collect();
    let graph = timed(&mut timings, "graph-build", || Graph::build(&lib));
    let n_unresolved = graph.n_unresolved();

    let hot = timed(&mut timings, "reach-hot", || {
        Reach::compute(&graph, &rules::hot_roots(&graph))
    });
    timed(&mut timings, "hot-path-panic", || {
        findings.extend(rules::check_hot_path_panic(&graph, &lib, &hot));
    });
    timed(&mut timings, "alloc-in-hot-loop", || {
        findings.extend(rules::check_alloc_in_hot_loop(&graph, &lib, &hot));
    });
    timed(&mut timings, "float-into-exact", || {
        let exact = Reach::compute(&graph, &rules::exact_roots(&graph));
        findings.extend(rules::check_float_into_exact(&graph, &lib, &exact));
    });
    timed(&mut timings, "scheduler-contract", || {
        let hooks = Reach::compute(&graph, &rules::scheduler_hook_roots(&graph));
        findings.extend(rules::check_scheduler_contract(&graph, &lib, &hooks));
    });
    timed(&mut timings, "dead-pub", || {
        let refs: Vec<rules::RefSource<'_>> = preps
            .iter()
            .map(|p| rules::RefSource {
                path: &p.path,
                tokens: &p.lexed.tokens,
                raw: &p.source,
            })
            .collect();
        findings.extend(rules::check_dead_pub(&lib, &refs));
    });

    // Symbol fill for lexical findings: the narrowest enclosing fn, or
    // a file-level symbol.
    for d in &mut findings {
        if !d.symbol.is_empty() {
            continue;
        }
        let prep = preps
            .binary_search_by(|p| p.path.as_str().cmp(&d.file))
            .ok()
            .map(|i| &preps[i]);
        d.symbol = match prep.and_then(|p| p.items.fn_covering_line(d.line)) {
            Some(item) => FnInfo {
                file: d.file.clone(),
                krate: crate_of(&d.file),
                file_idx: 0,
                item: item.clone(),
            }
            .symbol(),
            None => file_symbol(&d.file),
        };
    }

    // Pragma pass: drop findings a well-formed pragma covers; report the
    // pragmas that are malformed or name an unknown rule.
    timed(&mut timings, "pragmas", || {
        let mut bad = Vec::new();
        for p in &preps {
            for pragma in &p.lexed.pragmas {
                if let Some(err) = &pragma.error {
                    bad.push((p.path.clone(), pragma.line, err.clone()));
                    continue;
                }
                if !rules::RULE_NAMES.contains(&pragma.rule.as_str()) || pragma.rule == "bad-pragma"
                {
                    bad.push((
                        p.path.clone(),
                        pragma.line,
                        format!("pragma names unknown rule `{}`", pragma.rule),
                    ));
                    continue;
                }
                let target = pragma.applies_to_line();
                findings
                    .retain(|d| !(d.file == p.path && d.rule == pragma.rule && d.line == target));
            }
        }
        for (file, line, message) in bad {
            let symbol = file_symbol(&file);
            findings.push(Diagnostic {
                file,
                line,
                rule: "bad-pragma",
                message,
                symbol,
                chain: Vec::new(),
            });
        }
    });

    findings.sort();
    findings.dedup();
    LintResult {
        findings,
        n_files: preps.len(),
        n_items,
        n_unresolved,
        timings_us: timings,
    }
}

/// Lints one source file in isolation: the *lexical* rules plus the
/// pragma pass. The reachability rules need the whole workspace — use
/// [`analyze`] for those. `path` is the workspace-relative path used
/// for rule scoping and in diagnostics.
pub fn lint_source(path: &str, source: &str) -> Vec<Diagnostic> {
    let lexed = lexer::lex(source);
    let mut findings = rules::check_file(path, &lexed);

    let mut bad = Vec::new();
    for p in &lexed.pragmas {
        if let Some(err) = &p.error {
            bad.push((p.line, err.clone()));
            continue;
        }
        if !rules::RULE_NAMES.contains(&p.rule.as_str()) || p.rule == "bad-pragma" {
            bad.push((p.line, format!("pragma names unknown rule `{}`", p.rule)));
            continue;
        }
        let target = p.applies_to_line();
        findings.retain(|d| !(d.rule == p.rule && d.line == target));
    }
    for (line, message) in bad {
        findings.push(Diagnostic {
            file: path.to_string(),
            line,
            rule: "bad-pragma",
            message,
            symbol: file_symbol(path),
            chain: Vec::new(),
        });
    }
    findings.sort();
    findings
}

/// Analyzes every Rust file under `root` (see [`walk::rust_files`] for
/// what is scanned) and returns the aggregated findings.
pub fn run_lint(root: &Path) -> Result<LintResult, String> {
    let files = walk::rust_files(root)?;
    let mut inputs = Vec::with_capacity(files.len());
    for rel in &files {
        let full = root.join(rel.replace('/', std::path::MAIN_SEPARATOR_STR));
        let source = std::fs::read_to_string(&full)
            .map_err(|e| format!("cannot read {}: {e}", full.display()))?;
        inputs.push(SourceFile {
            path: rel.clone(),
            source,
        });
    }
    Ok(analyze(inputs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_pragma_suppresses_same_line() {
        let src = "let x = y as u32; // dlflint:allow(lossy-cast, \"y < 2^32 by construction\")";
        assert!(lint_source("crates/dlflow-core/src/gantt.rs", src).is_empty());
    }

    #[test]
    fn own_line_pragma_suppresses_next_line() {
        let src = "\
// dlflint:allow(lossy-cast, \"bounded\")
let x = y as u32;
";
        assert!(lint_source("crates/dlflow-core/src/gantt.rs", src).is_empty());
    }

    #[test]
    fn pragma_for_wrong_rule_does_not_suppress() {
        let src = "let x = y as u32; // dlflint:allow(float-eq, \"wrong rule\")";
        let d = lint_source("crates/dlflow-core/src/gantt.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "lossy-cast");
    }

    #[test]
    fn pragma_does_not_leak_to_other_lines() {
        let src = "\
let a = y as u32; // dlflint:allow(lossy-cast, \"bounded\")
let b = z as u32;
";
        let d = lint_source("crates/dlflow-core/src/gantt.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn malformed_and_unknown_pragmas_are_findings() {
        let missing = lint_source("src/lib.rs", "// dlflint:allow(float-eq)");
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].rule, "bad-pragma");
        let unknown = lint_source("src/lib.rs", "// dlflint:allow(no-such-rule, \"why\")");
        assert_eq!(unknown.len(), 1);
        assert!(unknown[0].message.contains("unknown rule"));
    }

    #[test]
    fn analyze_fills_symbols_for_lexical_findings() {
        let res = analyze(vec![SourceFile {
            path: "crates/dlflow-core/src/gantt.rs".into(),
            source: "impl Gantt { pub fn pack(&self) { let x = y as u32; } }\nlet z = w as u8;\n"
                .into(),
        }]);
        let casts: Vec<_> = res
            .findings
            .iter()
            .filter(|d| d.rule == "lossy-cast")
            .collect();
        assert_eq!(casts.len(), 2);
        assert_eq!(casts[0].symbol, "dlflow-core::gantt::Gantt::pack");
        assert_eq!(casts[1].symbol, "dlflow-core::gantt");
        assert_eq!(res.n_files, 1);
        assert!(res.n_items >= 1);
    }

    #[test]
    fn analyze_pragma_suppresses_graph_findings() {
        let engine = "impl Engine { pub fn step(&mut self) { settle(self); } }";
        let bad = "pub fn settle(e: &mut Engine) { e.q.pop().unwrap(); }";
        let ok = "pub fn settle(e: &mut Engine) {\n    \
                  // dlflint:allow(hot-path-panic, \"queue non-empty: checked by caller\")\n    \
                  e.q.pop().unwrap();\n}";
        let run = |helper: &str| {
            analyze(vec![
                SourceFile {
                    path: "crates/dlflow-sim/src/engine.rs".into(),
                    source: engine.into(),
                },
                SourceFile {
                    path: "crates/dlflow-sim/src/settle.rs".into(),
                    source: helper.into(),
                },
            ])
        };
        let hits: Vec<_> = run(bad)
            .findings
            .into_iter()
            .filter(|d| d.rule == "hot-path-panic")
            .collect();
        assert_eq!(hits.len(), 1);
        assert!(!hits[0].chain.is_empty());
        assert!(run(ok).findings.iter().all(|d| d.rule != "hot-path-panic"));
    }

    #[test]
    fn counts_group_by_symbol_and_by_file() {
        let res = analyze(vec![SourceFile {
            path: "crates/dlflow-core/src/gantt.rs".into(),
            source: "pub fn pack() { let a = x as u32; let b = y as u8; }".into(),
        }]);
        assert_eq!(res.counts()["lossy-cast"]["dlflow-core::gantt::pack"], 2);
        assert_eq!(
            res.counts_by_file()["lossy-cast"]["crates/dlflow-core/src/gantt.rs"],
            2
        );
    }

    #[test]
    fn json_report_escapes_quotes_and_includes_chain() {
        let res = LintResult {
            findings: vec![rules::Diagnostic {
                file: "a.rs".into(),
                line: 1,
                rule: "float-eq",
                message: "has \"quotes\"".into(),
                symbol: "k::m::f".into(),
                chain: vec!["root".into(), "`x` at a.rs:1".into()],
            }],
            n_files: 1,
            n_items: 0,
            n_unresolved: 0,
            timings_us: vec![("float-eq", 12)],
        };
        let json = res.to_json(false);
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\"chain\": [\"root\", \"`x` at a.rs:1\"]"));
        assert!(json.contains("\"n_findings\": 1"));
        assert!(!json.contains("timings_us"));
        assert!(res
            .to_json(true)
            .contains("\"timings_us\": {\"float-eq\": 12}"));
    }
}
