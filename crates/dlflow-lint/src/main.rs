//! `dlflow-lint` — run the workspace static-analysis pass.
//!
//! ```text
//! dlflow-lint                   # list findings (informational, exit 0)
//! dlflow-lint --check           # ratchet against lint-baseline.json (CI gate)
//! dlflow-lint --write-baseline  # (re)write lint-baseline.json (v2, by symbol)
//! dlflow-lint --json            # machine-readable findings report
//! dlflow-lint --explain <rule>  # print a rule's rationale and exit
//! dlflow-lint --timing          # include per-rule wall time in the output
//! dlflow-lint --max-wall-ms <n> # fail if total analysis exceeds n ms (CI budget)
//! dlflow-lint --root <dir>      # workspace root (default: cwd)
//! ```
//!
//! `--check` exits nonzero when the tree has findings the baseline does
//! not allow (new findings) *or* fewer findings than the baseline
//! records (stale — ratchet it down so the improvement is locked in).
//! Timing output is opt-in so that default human and `--json` output is
//! byte-identical across runs.

#![forbid(unsafe_code)]

use dlflow_lint::{baseline, rules};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

const BASELINE_FILE: &str = "lint-baseline.json";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let root = PathBuf::from(value_of("--root").unwrap_or_else(|| ".".to_string()));
    for (i, a) in args.iter().enumerate() {
        let known = matches!(
            a.as_str(),
            "--check"
                | "--write-baseline"
                | "--json"
                | "--explain"
                | "--timing"
                | "--max-wall-ms"
                | "--root"
        ) || i
            .checked_sub(1)
            .and_then(|k| args.get(k))
            .is_some_and(|prev| matches!(prev.as_str(), "--root" | "--explain" | "--max-wall-ms"));
        if !known {
            eprintln!(
                "unknown argument `{a}` (expected --check, --write-baseline, --json, \
                 --explain <rule>, --timing, --max-wall-ms <n>, --root <dir>)"
            );
            return ExitCode::FAILURE;
        }
    }

    if has("--explain") {
        let Some(rule) = value_of("--explain") else {
            eprintln!(
                "--explain needs a rule name; rules: {}",
                rules::RULE_NAMES.join(", ")
            );
            return ExitCode::FAILURE;
        };
        match rules::explain(&rule) {
            Some(text) => {
                println!("[{rule}]\n{text}");
                return ExitCode::SUCCESS;
            }
            None => {
                eprintln!(
                    "unknown rule `{rule}`; rules: {}",
                    rules::RULE_NAMES.join(", ")
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let max_wall_ms: Option<u128> = match value_of("--max-wall-ms") {
        Some(v) => match v.parse() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("--max-wall-ms needs an integer millisecond budget, got `{v}`");
                return ExitCode::FAILURE;
            }
        },
        None => {
            if has("--max-wall-ms") {
                eprintln!("--max-wall-ms needs an integer millisecond budget");
                return ExitCode::FAILURE;
            }
            None
        }
    };

    let t0 = Instant::now();
    let result = match dlflow_lint::run_lint(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dlflow-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let wall_ms = t0.elapsed().as_millis();

    let print_timing = || {
        eprintln!(
            "dlflow-lint: {} files, {} items, {} unresolved calls, {wall_ms} ms total",
            result.n_files, result.n_items, result.n_unresolved
        );
        for (rule, us) in &result.timings_us {
            eprintln!("  {rule:<22} {:>8.1} ms", *us as f64 / 1000.0);
        }
    };

    let over_budget = || -> bool {
        if let Some(budget) = max_wall_ms {
            if wall_ms > budget {
                eprintln!("dlflow-lint: analysis took {wall_ms} ms, over the {budget} ms budget");
                return true;
            }
        }
        false
    };

    if has("--write-baseline") {
        let counts = result.counts();
        let path = root.join(BASELINE_FILE);
        if let Err(e) = std::fs::write(&path, baseline::to_json(&baseline::Baseline::v2(counts))) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "wrote {} ({} findings across {} files)",
            path.display(),
            result.findings.len(),
            result.n_files
        );
        return ExitCode::SUCCESS;
    }

    if has("--json") {
        print!("{}", result.to_json(has("--timing")));
        if over_budget() {
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    if has("--check") {
        let path = root.join(BASELINE_FILE);
        let base = match std::fs::read_to_string(&path) {
            Ok(text) => match baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("{}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            },
            Err(_) => {
                eprintln!(
                    "{} not found — run `dlflow-lint --write-baseline` first",
                    path.display()
                );
                return ExitCode::FAILURE;
            }
        };
        let violations = baseline::diff(&result.counts(), &result.counts_by_file(), &base);
        if has("--timing") {
            print_timing();
        }
        if violations.is_empty() {
            eprintln!(
                "dlflow-lint --check: clean ({} files, {} baselined findings)",
                result.n_files,
                result.findings.len()
            );
            if base.version == 1 {
                eprintln!(
                    "note: {BASELINE_FILE} is legacy v1 (keyed by file) — \
                     `--write-baseline` upgrades it to v2 (keyed by symbol)"
                );
            }
            if over_budget() {
                return ExitCode::FAILURE;
            }
            return ExitCode::SUCCESS;
        }
        // Show the concrete findings behind every increased cell so the
        // failure is actionable without a second run.
        for v in &violations {
            eprintln!("{}", v.render());
            if let baseline::RatchetViolation::Increase { rule, key, .. } = v {
                for d in &result.findings {
                    let matched = if base.version == 1 {
                        &d.file == key
                    } else {
                        &d.symbol == key
                    };
                    if d.rule == *rule && matched {
                        eprintln!("  {}", d.render());
                    }
                }
            }
        }
        eprintln!(
            "dlflow-lint --check: {} ratchet violation(s)",
            violations.len()
        );
        return ExitCode::FAILURE;
    }

    // Default: informational listing.
    for d in &result.findings {
        println!("{}", d.render());
    }
    println!(
        "dlflow-lint: {} finding(s) across {} file(s)",
        result.findings.len(),
        result.n_files
    );
    if has("--timing") {
        print_timing();
    }
    if over_budget() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
