//! `dlflow-lint` — run the workspace static-analysis pass.
//!
//! ```text
//! dlflow-lint                   # list findings (informational, exit 0)
//! dlflow-lint --check           # ratchet against lint-baseline.json (CI gate)
//! dlflow-lint --write-baseline  # (re)write lint-baseline.json
//! dlflow-lint --json            # machine-readable findings report
//! dlflow-lint --root <dir>      # workspace root (default: cwd)
//! ```
//!
//! `--check` exits nonzero when the tree has findings the baseline does
//! not allow (new findings) *or* fewer findings than the baseline
//! records (stale — ratchet it down so the improvement is locked in).

#![forbid(unsafe_code)]

use dlflow_lint::baseline;
use std::path::PathBuf;
use std::process::ExitCode;

const BASELINE_FILE: &str = "lint-baseline.json";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let root = args
        .iter()
        .position(|a| a == "--root")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| ".".to_string());
    let root = PathBuf::from(root);
    for a in &args {
        let known = matches!(
            a.as_str(),
            "--check" | "--write-baseline" | "--json" | "--root"
        ) || args
            .iter()
            .position(|x| x == "--root")
            .is_some_and(|i| args.get(i + 1) == Some(a));
        if !known {
            eprintln!(
                "unknown argument `{a}` (expected --check, --write-baseline, --json, --root <dir>)"
            );
            return ExitCode::FAILURE;
        }
    }

    let result = match dlflow_lint::run_lint(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dlflow-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let counts = result.counts();

    if has("--write-baseline") {
        let path = root.join(BASELINE_FILE);
        if let Err(e) = std::fs::write(&path, baseline::to_json(&counts)) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "wrote {} ({} findings across {} files)",
            path.display(),
            result.findings.len(),
            result.n_files
        );
        return ExitCode::SUCCESS;
    }

    if has("--json") {
        print!("{}", result.to_json());
        return ExitCode::SUCCESS;
    }

    if has("--check") {
        let path = root.join(BASELINE_FILE);
        let base = match std::fs::read_to_string(&path) {
            Ok(text) => match baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("{}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            },
            Err(_) => {
                eprintln!(
                    "{} not found — run `dlflow-lint --write-baseline` first",
                    path.display()
                );
                return ExitCode::FAILURE;
            }
        };
        let violations = baseline::diff(&counts, &base);
        if violations.is_empty() {
            eprintln!(
                "dlflow-lint --check: clean ({} files, {} baselined findings)",
                result.n_files,
                result.findings.len()
            );
            return ExitCode::SUCCESS;
        }
        // Show the concrete findings behind every increased cell so the
        // failure is actionable without a second run.
        for v in &violations {
            eprintln!("{}", v.render());
            if let baseline::RatchetViolation::Increase { rule, file, .. } = v {
                for d in &result.findings {
                    if d.rule == *rule && &d.file == file {
                        eprintln!("  {}", d.render());
                    }
                }
            }
        }
        eprintln!(
            "dlflow-lint --check: {} ratchet violation(s)",
            violations.len()
        );
        return ExitCode::FAILURE;
    }

    // Default: informational listing.
    for d in &result.findings {
        println!("{}", d.render());
    }
    println!(
        "dlflow-lint: {} finding(s) across {} file(s)",
        result.findings.len(),
        result.n_files
    );
    ExitCode::SUCCESS
}
