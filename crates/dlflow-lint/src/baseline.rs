//! The ratchet baseline: committed per-`(rule, file)` finding counts
//! that are only allowed to go *down*.
//!
//! `lint-baseline.json` at the workspace root records how many findings
//! each rule currently has in each file. `--check` fails when a cell
//! exceeds its baseline (a new finding crept in) **and** when a cell
//! drops below it (the code improved — refresh the baseline with
//! `--write-baseline` so the gain is locked in). The committed tree is
//! therefore always *exactly* as clean as the baseline says.

use std::collections::BTreeMap;

/// Per-rule, per-file finding counts. `BTreeMap` keeps rendering
/// deterministic (the file is committed; diffs must be stable).
pub type Baseline = BTreeMap<String, BTreeMap<String, usize>>;

/// One way the current tree disagrees with the baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RatchetViolation {
    /// More findings than the baseline allows: the build must fail.
    Increase {
        /// Rule name.
        rule: String,
        /// Offending file.
        file: String,
        /// Findings in the working tree.
        found: usize,
        /// Findings the baseline allows.
        allowed: usize,
    },
    /// Fewer findings than recorded: the baseline is stale — ratchet it
    /// down with `--write-baseline` so the improvement cannot regress.
    Stale {
        /// Rule name.
        rule: String,
        /// Improved file.
        file: String,
        /// Findings in the working tree.
        found: usize,
        /// Findings the baseline still records.
        allowed: usize,
    },
}

impl RatchetViolation {
    /// Human rendering for `--check` output.
    pub fn render(&self) -> String {
        match self {
            RatchetViolation::Increase {
                rule,
                file,
                found,
                allowed,
            } => format!("NEW FINDINGS: [{rule}] {file}: {found} found, baseline allows {allowed}"),
            RatchetViolation::Stale {
                rule,
                file,
                found,
                allowed,
            } => format!(
                "STALE BASELINE: [{rule}] {file}: {found} found, baseline records {allowed} \
                 — run `dlflow-lint --write-baseline` to ratchet down"
            ),
        }
    }
}

/// Compares current counts against the baseline. An empty result means
/// the tree is exactly as clean as the committed baseline.
pub fn diff(current: &Baseline, baseline: &Baseline) -> Vec<RatchetViolation> {
    let mut out = Vec::new();
    let mut cells: BTreeMap<(&str, &str), (usize, usize)> = BTreeMap::new();
    for (rule, files) in current {
        for (file, &n) in files {
            cells.entry((rule, file)).or_insert((0, 0)).0 = n;
        }
    }
    for (rule, files) in baseline {
        for (file, &n) in files {
            cells.entry((rule, file)).or_insert((0, 0)).1 = n;
        }
    }
    for ((rule, file), (found, allowed)) in cells {
        if found > allowed {
            out.push(RatchetViolation::Increase {
                rule: rule.to_string(),
                file: file.to_string(),
                found,
                allowed,
            });
        } else if found < allowed {
            out.push(RatchetViolation::Stale {
                rule: rule.to_string(),
                file: file.to_string(),
                found,
                allowed,
            });
        }
    }
    out
}

/// Renders the baseline as deterministic JSON (hand-rolled like the
/// campaign reports — no serde in the offline dependency set).
pub fn to_json(b: &Baseline) -> String {
    let mut s = String::from("{\n");
    let n_rules = b.len();
    for (ri, (rule, files)) in b.iter().enumerate() {
        s.push_str(&format!("  \"{rule}\": {{\n"));
        let n_files = files.len();
        for (fi, (file, count)) in files.iter().enumerate() {
            let comma = if fi + 1 == n_files { "" } else { "," };
            s.push_str(&format!("    \"{file}\": {count}{comma}\n"));
        }
        let comma = if ri + 1 == n_rules { "" } else { "," };
        s.push_str(&format!("  }}{comma}\n"));
    }
    s.push_str("}\n");
    s
}

/// Parses the JSON produced by [`to_json`] (a two-level object of
/// strings to integers — the only shape the baseline ever has).
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut out = Baseline::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        return Ok(out);
    }
    loop {
        p.skip_ws();
        let rule = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        p.expect(b'{')?;
        let mut files = BTreeMap::new();
        p.skip_ws();
        if p.peek() == Some(b'}') {
            p.pos += 1;
        } else {
            loop {
                p.skip_ws();
                let file = p.string()?;
                p.skip_ws();
                p.expect(b':')?;
                p.skip_ws();
                let count = p.number()?;
                files.insert(file, count);
                p.skip_ws();
                match p.next() {
                    Some(b',') => continue,
                    Some(b'}') => break,
                    _ => return Err("expected `,` or `}` in file map".into()),
                }
            }
        }
        out.insert(rule, files);
        p.skip_ws();
        match p.next() {
            Some(b',') => continue,
            Some(b'}') => break,
            _ => return Err("expected `,` or `}` in rule map".into()),
        }
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }
    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        self.pos += 1;
        b
    }
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }
    fn expect(&mut self, want: u8) -> Result<(), String> {
        if self.next() == Some(want) {
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", want as char, self.pos))
        }
    }
    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| e.to_string())?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err("unterminated string".into())
    }
    fn number(&mut self) -> Result<usize, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse()
            .map_err(|_| format!("expected a count at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(entries: &[(&str, &str, usize)]) -> Baseline {
        let mut out = Baseline::new();
        for (rule, file, n) in entries {
            out.entry(rule.to_string())
                .or_default()
                .insert(file.to_string(), *n);
        }
        out
    }

    #[test]
    fn equal_baselines_are_clean() {
        let x = b(&[("lossy-cast", "a.rs", 3)]);
        assert!(diff(&x, &x).is_empty());
    }

    #[test]
    fn ratchet_up_is_an_increase() {
        let cur = b(&[("lossy-cast", "a.rs", 4)]);
        let base = b(&[("lossy-cast", "a.rs", 3)]);
        let v = diff(&cur, &base);
        assert_eq!(v.len(), 1);
        assert!(matches!(
            &v[0],
            RatchetViolation::Increase {
                found: 4,
                allowed: 3,
                ..
            }
        ));
        // A finding in a file the baseline has never seen is also new.
        let cur = b(&[("float-eq", "new.rs", 1)]);
        let v = diff(&cur, &Baseline::new());
        assert!(matches!(
            &v[0],
            RatchetViolation::Increase { allowed: 0, .. }
        ));
    }

    #[test]
    fn ratchet_down_is_stale() {
        let cur = b(&[("lossy-cast", "a.rs", 1)]);
        let base = b(&[("lossy-cast", "a.rs", 3)]);
        let v = diff(&cur, &base);
        assert_eq!(v.len(), 1);
        assert!(matches!(
            &v[0],
            RatchetViolation::Stale {
                found: 1,
                allowed: 3,
                ..
            }
        ));
        // Fully fixed file still recorded in the baseline: stale too.
        let v = diff(&Baseline::new(), &base);
        assert!(matches!(&v[0], RatchetViolation::Stale { found: 0, .. }));
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let x = b(&[
            ("lossy-cast", "crates/dlflow-num/src/rational.rs", 13),
            ("lossy-cast", "crates/dlflow-core/src/gantt.rs", 4),
            ("float-eq", "crates/dlflow-sim/src/campaign.rs", 2),
        ]);
        let json = to_json(&x);
        assert_eq!(parse(&json).unwrap(), x);
        // Empty baseline roundtrips too.
        assert_eq!(parse(&to_json(&Baseline::new())).unwrap(), Baseline::new());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"rule\": 3}").is_err());
    }
}
