//! The ratchet baseline: committed accepted-finding counts that are
//! only allowed to go *down*.
//!
//! `lint-baseline.json` at the workspace root records how many findings
//! each rule currently has. `--check` fails when a cell exceeds its
//! baseline (a new finding crept in) **and** when a cell drops below it
//! (the code improved — refresh with `--write-baseline` so the gain is
//! locked in). The committed tree is therefore always *exactly* as
//! clean as the baseline says.
//!
//! Two formats exist:
//!
//! * **v2** (written since PR 7): `{"version": 2, "counts": {rule:
//!   {symbol: n}}}` — keyed by the stable *symbol* of the enclosing item
//!   (`dlflow-sim::engine::Engine::step`), so a finding survives a file
//!   rename but not a move to a different function. An empty baseline
//!   renders as plain `{}`.
//! * **v1** (PR 6): a bare two-level `{rule: {file: n}}` object. Parsed
//!   transparently; `diff` then compares per-file counts, and the next
//!   `--write-baseline` upgrades the file to v2.

use std::collections::BTreeMap;

/// Two-level counts: rule → key → findings. `BTreeMap` keeps rendering
/// deterministic (the file is committed; diffs must be stable).
pub type Counts = BTreeMap<String, BTreeMap<String, usize>>;

/// A parsed baseline: the counts plus the format they are keyed in.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// 1 = keyed by file (legacy), 2 = keyed by symbol. An empty
    /// baseline is version 2 by construction.
    pub version: u8,
    /// rule → (file | symbol) → accepted finding count.
    pub counts: Counts,
}

impl Baseline {
    /// The empty v2 baseline (what a clean tree commits).
    pub fn empty() -> Baseline {
        Baseline {
            version: 2,
            counts: Counts::new(),
        }
    }

    /// A v2 baseline over symbol counts.
    pub fn v2(counts: Counts) -> Baseline {
        Baseline { version: 2, counts }
    }
}

/// One way the current tree disagrees with the baseline. `key` is a
/// symbol for v2 baselines and a file path for legacy v1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RatchetViolation {
    /// More findings than the baseline allows: the build must fail.
    Increase {
        /// Rule name.
        rule: String,
        /// Offending symbol (v2) or file (v1).
        key: String,
        /// Findings in the working tree.
        found: usize,
        /// Findings the baseline allows.
        allowed: usize,
    },
    /// Fewer findings than recorded: the baseline is stale — ratchet it
    /// down with `--write-baseline` so the improvement cannot regress.
    Stale {
        /// Rule name.
        rule: String,
        /// Improved symbol (v2) or file (v1).
        key: String,
        /// Findings in the working tree.
        found: usize,
        /// Findings the baseline still records.
        allowed: usize,
    },
}

impl RatchetViolation {
    /// Human rendering for `--check` output.
    pub fn render(&self) -> String {
        match self {
            RatchetViolation::Increase {
                rule,
                key,
                found,
                allowed,
            } => format!("NEW FINDINGS: [{rule}] {key}: {found} found, baseline allows {allowed}"),
            RatchetViolation::Stale {
                rule,
                key,
                found,
                allowed,
            } => format!(
                "STALE BASELINE: [{rule}] {key}: {found} found, baseline records {allowed} \
                 — run `dlflow-lint --write-baseline` to ratchet down"
            ),
        }
    }
}

/// Compares the current tree against the baseline, keyed per the
/// baseline's own version: `by_symbol` for v2, `by_file` for legacy v1.
/// An empty result means the tree is exactly as clean as committed.
pub fn diff(by_symbol: &Counts, by_file: &Counts, baseline: &Baseline) -> Vec<RatchetViolation> {
    let current = if baseline.version == 1 {
        by_file
    } else {
        by_symbol
    };
    let mut out = Vec::new();
    let mut cells: BTreeMap<(&str, &str), (usize, usize)> = BTreeMap::new();
    for (rule, keys) in current {
        for (key, &n) in keys {
            cells.entry((rule, key)).or_insert((0, 0)).0 = n;
        }
    }
    for (rule, keys) in &baseline.counts {
        for (key, &n) in keys {
            cells.entry((rule, key)).or_insert((0, 0)).1 = n;
        }
    }
    for ((rule, key), (found, allowed)) in cells {
        if found > allowed {
            out.push(RatchetViolation::Increase {
                rule: rule.to_string(),
                key: key.to_string(),
                found,
                allowed,
            });
        } else if found < allowed {
            out.push(RatchetViolation::Stale {
                rule: rule.to_string(),
                key: key.to_string(),
                found,
                allowed,
            });
        }
    }
    out
}

fn counts_json(counts: &Counts, indent: &str) -> String {
    let mut s = String::from("{\n");
    let n_rules = counts.len();
    for (ri, (rule, keys)) in counts.iter().enumerate() {
        s.push_str(&format!("{indent}  \"{rule}\": {{\n"));
        let n_keys = keys.len();
        for (ki, (key, count)) in keys.iter().enumerate() {
            let comma = if ki + 1 == n_keys { "" } else { "," };
            s.push_str(&format!("{indent}    \"{key}\": {count}{comma}\n"));
        }
        let comma = if ri + 1 == n_rules { "" } else { "," };
        s.push_str(&format!("{indent}  }}{comma}\n"));
    }
    s.push_str(&format!("{indent}}}"));
    s
}

/// Renders a baseline as deterministic JSON (hand-rolled like the
/// campaign reports — no serde in the offline dependency set). Always
/// writes v2; an empty baseline is plain `{}` so "no accepted findings
/// anywhere" reads at a glance.
pub fn to_json(b: &Baseline) -> String {
    if b.counts.is_empty() {
        return "{}\n".to_string();
    }
    format!(
        "{{\n  \"version\": 2,\n  \"counts\": {}\n}}\n",
        counts_json(&b.counts, "  ")
    )
}

/// Parses either baseline format: `{}` (empty v2), a `version: 2`
/// object, or a legacy bare v1 two-level map.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    p.skip_ws();
    if p.peek() == Some(b'}') {
        return Ok(Baseline::empty());
    }
    // Sniff the first key without consuming it.
    let mark = p.pos;
    let first_key = p.string()?;
    if first_key == "version" {
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        let version = p.number()?;
        if version != 2 {
            return Err(format!("unsupported baseline version {version}"));
        }
        p.skip_ws();
        p.expect(b',')?;
        p.skip_ws();
        let key = p.string()?;
        if key != "counts" {
            return Err(format!("expected `counts` after version, got `{key}`"));
        }
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        let counts = p.two_level()?;
        p.skip_ws();
        p.expect(b'}')?;
        Ok(Baseline { version: 2, counts })
    } else {
        // Legacy v1: the whole object is the two-level map; rewind to
        // just after `{` and reparse it as such.
        p.pos = mark;
        let counts = p.two_level_open()?;
        Ok(Baseline { version: 1, counts })
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }
    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        self.pos += 1;
        b
    }
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }
    fn expect(&mut self, want: u8) -> Result<(), String> {
        if self.next() == Some(want) {
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", want as char, self.pos))
        }
    }
    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| e.to_string())?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err("unterminated string".into())
    }
    fn number(&mut self) -> Result<usize, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse()
            .map_err(|_| format!("expected a count at byte {start}"))
    }
    /// Parses a `{rule: {key: n}}` object starting at its `{`.
    fn two_level(&mut self) -> Result<Counts, String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Counts::new());
        }
        self.two_level_open()
    }
    /// Parses the entries of a two-level object whose `{` is already
    /// consumed and which is known to be non-empty.
    fn two_level_open(&mut self) -> Result<Counts, String> {
        let mut out = Counts::new();
        loop {
            self.skip_ws();
            let rule = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.expect(b'{')?;
            let mut keys = BTreeMap::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
            } else {
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let count = self.number()?;
                    keys.insert(key, count);
                    self.skip_ws();
                    match self.next() {
                        Some(b',') => continue,
                        Some(b'}') => break,
                        _ => return Err("expected `,` or `}` in key map".into()),
                    }
                }
            }
            out.insert(rule, keys);
            self.skip_ws();
            match self.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err("expected `,` or `}` in rule map".into()),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(entries: &[(&str, &str, usize)]) -> Counts {
        let mut out = Counts::new();
        for (rule, key, n) in entries {
            out.entry(rule.to_string())
                .or_default()
                .insert(key.to_string(), *n);
        }
        out
    }

    #[test]
    fn equal_baselines_are_clean() {
        let x = c(&[("lossy-cast", "dlflow-num::rational::Rat::from_f64", 3)]);
        assert!(diff(&x, &Counts::new(), &Baseline::v2(x.clone())).is_empty());
    }

    #[test]
    fn ratchet_up_is_an_increase() {
        let cur = c(&[("lossy-cast", "dlflow-num::rational::Rat::den", 4)]);
        let base = Baseline::v2(c(&[("lossy-cast", "dlflow-num::rational::Rat::den", 3)]));
        let v = diff(&cur, &Counts::new(), &base);
        assert_eq!(v.len(), 1);
        assert!(matches!(
            &v[0],
            RatchetViolation::Increase {
                found: 4,
                allowed: 3,
                ..
            }
        ));
        // A finding at a symbol the baseline has never seen is also new.
        let cur = c(&[("float-eq", "dlflow-sim::campaign::run", 1)]);
        let v = diff(&cur, &Counts::new(), &Baseline::empty());
        assert!(matches!(
            &v[0],
            RatchetViolation::Increase { allowed: 0, .. }
        ));
    }

    #[test]
    fn ratchet_down_is_stale() {
        let cur = c(&[("lossy-cast", "a::b::f", 1)]);
        let base = Baseline::v2(c(&[("lossy-cast", "a::b::f", 3)]));
        let v = diff(&cur, &Counts::new(), &base);
        assert_eq!(v.len(), 1);
        assert!(matches!(
            &v[0],
            RatchetViolation::Stale {
                found: 1,
                allowed: 3,
                ..
            }
        ));
        // Fully fixed symbol still recorded in the baseline: stale too.
        let v = diff(&Counts::new(), &Counts::new(), &base);
        assert!(matches!(&v[0], RatchetViolation::Stale { found: 0, .. }));
    }

    #[test]
    fn v1_baselines_diff_against_file_counts() {
        let v1 = parse("{\"lossy-cast\": {\"crates/dlflow-num/src/rational.rs\": 16}}").unwrap();
        assert_eq!(v1.version, 1);
        let by_file = c(&[("lossy-cast", "crates/dlflow-num/src/rational.rs", 16)]);
        let by_symbol = c(&[("lossy-cast", "dlflow-num::rational::Rat::den", 16)]);
        assert!(diff(&by_symbol, &by_file, &v1).is_empty());
        // The same tree against a v2 baseline uses symbol keys.
        let v2 = Baseline::v2(by_symbol.clone());
        assert!(diff(&by_symbol, &by_file, &v2).is_empty());
    }

    #[test]
    fn json_roundtrip_is_lossless_and_empty_is_bare_braces() {
        let x = Baseline::v2(c(&[
            ("lossy-cast", "dlflow-num::rational::Rat::num", 13),
            ("lossy-cast", "dlflow-core::gantt::render", 4),
            ("float-eq", "dlflow-sim::campaign::run", 2),
        ]));
        let json = to_json(&x);
        assert!(json.starts_with("{\n  \"version\": 2,\n  \"counts\": {"));
        assert_eq!(parse(&json).unwrap(), x);
        // The empty baseline is written, and read back, as plain {}.
        assert_eq!(to_json(&Baseline::empty()), "{}\n");
        assert_eq!(parse("{}").unwrap(), Baseline::empty());
    }

    #[test]
    fn parse_rejects_garbage_and_future_versions() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"rule\": 3}").is_err());
        assert!(parse("{\"version\": 3, \"counts\": {}}").is_err());
    }
}
