//! Integration tests: every rule against its bad/clean fixture pair,
//! ratchet behavior over real `LintResult` counts, and the self-check
//! that the committed tree is exactly as clean as `lint-baseline.json`.

use dlflow_lint::baseline::{self, RatchetViolation};
use dlflow_lint::{lint_source, run_lint};
use std::path::Path;

/// Loads a fixture from `testdata/` (excluded from the workspace walk —
/// fixtures are intentionally bad) and lints it under `as_path`, which
/// decides rule scoping.
fn lint_fixture(fixture: &str, as_path: &str) -> Vec<dlflow_lint::rules::Diagnostic> {
    let file = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("testdata")
        .join(fixture);
    let src = std::fs::read_to_string(&file)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", file.display()));
    lint_source(as_path, &src)
}

/// Bad fixture: at least `min` findings, every one of `rule`. Clean
/// fixture: no findings at all under the same path.
fn assert_rule_pair(rule: &str, bad: &str, clean: &str, as_path: &str, min: usize) {
    let findings = lint_fixture(bad, as_path);
    assert!(
        findings.len() >= min,
        "{bad}: expected >= {min} findings, got {findings:?}"
    );
    for d in &findings {
        assert_eq!(d.rule, rule, "{bad}: unexpected finding {d:?}");
    }
    let silent = lint_fixture(clean, as_path);
    assert!(
        silent.is_empty(),
        "{clean}: expected silence, got {silent:?}"
    );
}

#[test]
fn hash_iter_determinism_fixtures() {
    assert_rule_pair(
        "hash-iter-determinism",
        "hash_iter_bad.rs",
        "hash_iter_clean.rs",
        "crates/dlflow-sim/src/campaign.rs",
        2, // HashMap and HashSet both appear
    );
}

#[test]
fn no_wallclock_entropy_fixtures() {
    assert_rule_pair(
        "no-wallclock-entropy",
        "wallclock_bad.rs",
        "wallclock_clean.rs",
        "crates/dlflow-sim/src/workload.rs",
        2, // Instant and SystemTime both appear
    );
    // The same source is fine where timing is the point.
    let bench = lint_fixture(
        "wallclock_bad.rs",
        "crates/dlflow-bench/src/bin/campaign.rs",
    );
    assert!(bench.is_empty(), "bench paths are out of scope: {bench:?}");
}

#[test]
fn hot_path_panic_fixtures() {
    assert_rule_pair(
        "hot-path-panic",
        "hot_path_panic_bad.rs",
        "hot_path_panic_clean.rs",
        "crates/dlflow-sim/src/engine.rs",
        3, // unwrap, expect, panic!, todo!
    );
}

#[test]
fn float_eq_fixtures() {
    assert_rule_pair(
        "float-eq",
        "float_eq_bad.rs",
        "float_eq_clean.rs",
        "crates/dlflow-core/src/maxflow.rs",
        2, // `== 0.0` and `1.5 !=`
    );
    // The dyadic-exactness modules are sanctioned.
    let dyadic = lint_fixture("float_eq_bad.rs", "crates/dlflow-core/src/instance.rs");
    assert!(dyadic.is_empty(), "instance.rs is sanctioned: {dyadic:?}");
}

#[test]
fn lossy_cast_fixtures() {
    assert_rule_pair(
        "lossy-cast",
        "lossy_cast_bad.rs",
        "lossy_cast_clean.rs",
        "crates/dlflow-num/src/simplex_support.rs",
        3, // as u32, as i64, as usize
    );
    // The limb kernels are excluded: casts are the algorithm there.
    let limb = lint_fixture("lossy_cast_bad.rs", "crates/dlflow-num/src/ubig.rs");
    assert!(limb.is_empty(), "ubig.rs is excluded: {limb:?}");
}

#[test]
fn alloc_in_hot_loop_fixtures() {
    assert_rule_pair(
        "alloc-in-hot-loop",
        "alloc_hot_loop_bad.rs",
        "alloc_hot_loop_clean.rs",
        "crates/dlflow-sim/src/engine.rs",
        2, // to_vec and format! inside the loop
    );
}

#[test]
fn pragmas_suppress_fixture_findings_line_by_line() {
    // A fixture's finding disappears under a well-formed pragma for the
    // right rule on the right line — and only there.
    let src = "\
// dlflint:allow(float-eq, \"converged() tests an exact sentinel (0.0)\")
fn converged(x: f64) -> bool { x == 0.0 }
fn diverged(y: f64) -> bool { y == 0.0 }
";
    let d = lint_source("crates/dlflow-core/src/maxflow.rs", src);
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].line, 3);
}

#[test]
fn ratchet_over_real_counts() {
    // Build counts from a real lint run over a fixture, then perturb
    // them both ways and check the ratchet reacts.
    let findings = lint_fixture("lossy_cast_bad.rs", "crates/dlflow-num/src/x.rs");
    let result = dlflow_lint::LintResult {
        findings,
        n_files: 1,
    };
    let counts = result.counts();
    assert!(baseline::diff(&counts, &counts).is_empty());

    let mut loosened = counts.clone();
    *loosened
        .get_mut("lossy-cast")
        .unwrap()
        .get_mut("crates/dlflow-num/src/x.rs")
        .unwrap() += 1;
    let v = baseline::diff(&counts, &loosened);
    assert!(matches!(v.as_slice(), [RatchetViolation::Stale { .. }]));
    let v = baseline::diff(&loosened, &counts);
    assert!(matches!(v.as_slice(), [RatchetViolation::Increase { .. }]));

    // Baseline JSON roundtrips the real counts losslessly.
    assert_eq!(
        baseline::parse(&baseline::to_json(&counts)).unwrap(),
        counts
    );
}

#[test]
fn committed_tree_matches_committed_baseline() {
    // The self-check CI runs: linting the workspace must agree *exactly*
    // with lint-baseline.json — no new findings, no stale cells.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let result = run_lint(&root).expect("workspace lint must run");
    assert!(
        result.n_files > 50,
        "walk looks truncated: {}",
        result.n_files
    );
    let baseline_text = std::fs::read_to_string(root.join("lint-baseline.json"))
        .expect("lint-baseline.json must be committed at the workspace root");
    let base = baseline::parse(&baseline_text).expect("baseline must parse");
    let violations = baseline::diff(&result.counts(), &base);
    assert!(
        violations.is_empty(),
        "tree disagrees with lint-baseline.json:\n{}",
        violations
            .iter()
            .map(|v| v.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
