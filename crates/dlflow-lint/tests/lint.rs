//! Integration tests: every rule against its bad/clean fixture pair,
//! ratchet behavior over real `LintResult` counts, and the self-check
//! that the committed tree is exactly as clean as `lint-baseline.json`.

use dlflow_lint::baseline::{self, Baseline, RatchetViolation};
use dlflow_lint::rules::Diagnostic;
use dlflow_lint::{analyze, lint_source, run_lint, SourceFile};
use std::path::Path;

/// Reads a fixture from `testdata/` (excluded from the workspace walk —
/// fixtures are intentionally bad).
fn fixture_text(fixture: &str) -> String {
    let file = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("testdata")
        .join(fixture);
    std::fs::read_to_string(&file).unwrap_or_else(|e| panic!("cannot read {}: {e}", file.display()))
}

/// Lints a fixture with the *lexical* pass under `as_path`, which
/// decides rule scoping.
fn lint_fixture(fixture: &str, as_path: &str) -> Vec<Diagnostic> {
    lint_source(as_path, &fixture_text(fixture))
}

/// Analyzes a fixture as a one-file workspace under `as_path` — the
/// full pipeline including the call-graph rules.
fn analyze_fixture(fixture: &str, as_path: &str) -> Vec<Diagnostic> {
    analyze(vec![SourceFile {
        path: as_path.to_string(),
        source: fixture_text(fixture),
    }])
    .findings
}

/// Bad fixture: at least `min` findings, every one of `rule`. Clean
/// fixture: no findings at all under the same path.
fn assert_pair(
    lint: fn(&str, &str) -> Vec<Diagnostic>,
    rule: &str,
    bad: &str,
    clean: &str,
    as_path: &str,
    min: usize,
) {
    let findings = lint(bad, as_path);
    assert!(
        findings.len() >= min,
        "{bad}: expected >= {min} findings, got {findings:?}"
    );
    for d in &findings {
        assert_eq!(d.rule, rule, "{bad}: unexpected finding {d:?}");
    }
    let silent = lint(clean, as_path);
    assert!(
        silent.is_empty(),
        "{clean}: expected silence, got {silent:?}"
    );
}

#[test]
fn hash_iter_determinism_fixtures() {
    assert_pair(
        lint_fixture,
        "hash-iter-determinism",
        "hash_iter_bad.rs",
        "hash_iter_clean.rs",
        "crates/dlflow-sim/src/campaign.rs",
        2, // HashMap and HashSet both appear
    );
}

#[test]
fn no_wallclock_entropy_fixtures() {
    assert_pair(
        lint_fixture,
        "no-wallclock-entropy",
        "wallclock_bad.rs",
        "wallclock_clean.rs",
        "crates/dlflow-sim/src/workload.rs",
        2, // Instant and SystemTime both appear
    );
    // The same source is fine where timing is the point.
    let bench = lint_fixture(
        "wallclock_bad.rs",
        "crates/dlflow-bench/src/bin/campaign.rs",
    );
    assert!(bench.is_empty(), "bench paths are out of scope: {bench:?}");
}

#[test]
fn hot_path_panic_fixtures() {
    // Reachability rule: runs under the full pipeline. The bad fixture
    // panics both inside `Engine::step` and in a helper it calls; the
    // clean one handles failure structurally and parks a panic in a
    // function no root reaches.
    assert_pair(
        analyze_fixture,
        "hot-path-panic",
        "hot_path_panic_bad.rs",
        "hot_path_panic_clean.rs",
        "crates/dlflow-sim/src/engine.rs",
        4, // unwrap, panic!, expect, todo!
    );
    // Transitive findings carry a witness chain rooted at the engine.
    let findings = analyze_fixture("hot_path_panic_bad.rs", "crates/dlflow-sim/src/engine.rs");
    let in_helper = findings
        .iter()
        .find(|d| d.symbol.ends_with("drain_tail"))
        .expect("helper finding");
    assert!(in_helper.chain.first().unwrap().contains("Engine::step"));
}

#[test]
fn float_eq_fixtures() {
    assert_pair(
        lint_fixture,
        "float-eq",
        "float_eq_bad.rs",
        "float_eq_clean.rs",
        "crates/dlflow-core/src/maxflow.rs",
        2, // `== 0.0` and `1.5 !=`
    );
    // The dyadic-exactness modules are sanctioned.
    let dyadic = lint_fixture("float_eq_bad.rs", "crates/dlflow-core/src/instance.rs");
    assert!(dyadic.is_empty(), "instance.rs is sanctioned: {dyadic:?}");
}

#[test]
fn lossy_cast_fixtures() {
    assert_pair(
        lint_fixture,
        "lossy-cast",
        "lossy_cast_bad.rs",
        "lossy_cast_clean.rs",
        "crates/dlflow-num/src/simplex_support.rs",
        3, // as u32, as i64, as usize
    );
    // The limb kernels are excluded: casts are the algorithm there.
    let limb = lint_fixture("lossy_cast_bad.rs", "crates/dlflow-num/src/ubig.rs");
    assert!(limb.is_empty(), "ubig.rs is excluded: {limb:?}");
}

#[test]
fn alloc_in_hot_loop_fixtures() {
    assert_pair(
        analyze_fixture,
        "alloc-in-hot-loop",
        "alloc_hot_loop_bad.rs",
        "alloc_hot_loop_clean.rs",
        "crates/dlflow-sim/src/engine.rs",
        2, // to_vec and format! inside the loop
    );
}

#[test]
fn lexer_hardening_fixtures() {
    // Raw strings (with and without extra hashes), nested block
    // comments, char/byte literals holding delimiters, and lifetime
    // ticks: the bad file's one real cast survives them; the clean
    // file's decoy findings all sit inside literals or comments.
    assert_pair(
        lint_fixture,
        "lossy-cast",
        "lexer_hardening_bad.rs",
        "lexer_hardening_clean.rs",
        "crates/dlflow-num/src/simplex_support.rs",
        1,
    );
    let findings = lint_fixture(
        "lexer_hardening_bad.rs",
        "crates/dlflow-num/src/simplex_support.rs",
    );
    assert_eq!(findings.len(), 1, "only the real cast: {findings:?}");
    assert_eq!(findings[0].line, 12);
}

#[test]
fn pragmas_suppress_fixture_findings_line_by_line() {
    // A fixture's finding disappears under a well-formed pragma for the
    // right rule on the right line — and only there.
    let src = "\
// dlflint:allow(float-eq, \"converged() tests an exact sentinel (0.0)\")
fn converged(x: f64) -> bool { x == 0.0 }
fn diverged(y: f64) -> bool { y == 0.0 }
";
    let d = lint_source("crates/dlflow-core/src/maxflow.rs", src);
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].line, 3);
}

#[test]
fn ratchet_over_real_counts() {
    // Build counts from a real lint run over a fixture, then perturb
    // them both ways and check the ratchet reacts.
    let result = analyze(vec![SourceFile {
        path: "crates/dlflow-num/src/x.rs".to_string(),
        source: fixture_text("lossy_cast_bad.rs"),
    }]);
    let counts = result.counts();
    let by_file = result.counts_by_file();
    let base = Baseline::v2(counts.clone());
    assert!(baseline::diff(&counts, &by_file, &base).is_empty());

    let mut loosened = counts.clone();
    let cell = loosened
        .get_mut("lossy-cast")
        .unwrap()
        .values_mut()
        .next()
        .unwrap();
    *cell += 1;
    let v = baseline::diff(&counts, &by_file, &Baseline::v2(loosened.clone()));
    assert!(matches!(v.as_slice(), [RatchetViolation::Stale { .. }]));
    let v = baseline::diff(&loosened, &by_file, &base);
    assert!(matches!(v.as_slice(), [RatchetViolation::Increase { .. }]));

    // A legacy v1 baseline is diffed against per-file counts instead.
    let v1 = Baseline {
        version: 1,
        counts: by_file.clone(),
    };
    assert!(baseline::diff(&counts, &by_file, &v1).is_empty());

    // Baseline JSON roundtrips the real counts losslessly (as v2).
    assert_eq!(baseline::parse(&baseline::to_json(&base)).unwrap(), base);

    // The empty baseline renders as the two-byte sentinel `{}`.
    assert_eq!(baseline::to_json(&Baseline::empty()), "{}\n");
}

#[test]
fn committed_tree_matches_committed_baseline() {
    // The self-check CI runs: linting the workspace must agree *exactly*
    // with lint-baseline.json — no new findings, no stale cells.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let result = run_lint(&root).expect("workspace lint must run");
    assert!(
        result.n_files > 50,
        "walk looks truncated: {}",
        result.n_files
    );
    let baseline_text = std::fs::read_to_string(root.join("lint-baseline.json"))
        .expect("lint-baseline.json must be committed at the workspace root");
    let base = baseline::parse(&baseline_text).expect("baseline must parse");
    let violations = baseline::diff(&result.counts(), &result.counts_by_file(), &base);
    assert!(
        violations.is_empty(),
        "tree disagrees with lint-baseline.json:\n{}",
        violations
            .iter()
            .map(|v| v.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
