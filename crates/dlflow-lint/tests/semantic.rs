//! Integration tests of the semantic front end from the outside: the
//! item/graph/reachability layers a custom driver would compose, the
//! acceptance fixture for cross-module hot-path detection, and the
//! determinism contract of [`dlflow_lint::analyze`].

use dlflow_lint::graph::{crate_of, is_lib_source, loop_spans, Graph, GraphFile};
use dlflow_lint::items::parse_items;
use dlflow_lint::lexer::lex;
use dlflow_lint::reach::Reach;
use dlflow_lint::rules::check_file;
use dlflow_lint::{analyze, SourceFile};

#[test]
fn path_classification_helpers() {
    assert_eq!(crate_of("crates/dlflow-sim/src/engine.rs"), "dlflow-sim");
    assert!(is_lib_source("crates/dlflow-sim/src/engine.rs"));
    assert!(!is_lib_source("crates/dlflow-sim/tests/prop_engine.rs"));
    assert!(!is_lib_source("examples/tour.rs"));
}

#[test]
fn item_parser_locates_enclosing_functions() {
    let src = "pub fn alpha() {\n    work();\n}\n\nfn beta() {}\n";
    let lexed = lex(src);
    let mask = vec![false; lexed.tokens.len()];
    let items = parse_items(&lexed.tokens, &mask);
    assert_eq!(items.fns.len(), 2);
    assert_eq!(items.fn_covering_line(2).unwrap().name, "alpha");
    assert_eq!(items.fn_covering_line(5).unwrap().name, "beta");
    assert!(items.fn_covering_line(4).is_none());
}

#[test]
fn pragma_placement_rules() {
    let src = "let a = x.unwrap(); // dlflint:allow(hot-path-panic, \"why\")\n\
               // dlflint:allow(lossy-cast, \"why\")\nlet b = y as u8;\n";
    let lexed = lex(src);
    assert_eq!(lexed.pragmas.len(), 2);
    // Trailing form suppresses its own line; own-line form the next.
    assert_eq!(lexed.pragmas[0].applies_to_line(), 1);
    assert_eq!(lexed.pragmas[1].applies_to_line(), 3);
}

#[test]
fn loop_spans_cover_nested_bodies() {
    let lexed = lex("fn f() { for i in 0..3 { while go() { tick(); } } g(); }");
    let spans = loop_spans(&lexed.tokens, 0, lexed.tokens.len());
    assert_eq!(spans.len(), 2); // for body + nested while body
    let (outer, inner) = (spans[0], spans[1]);
    assert!(outer.0 < inner.0 && inner.1 <= outer.1);
}

#[test]
fn lexical_rules_run_standalone_per_file() {
    let lexed = lex("pub fn pack() { let a = x as u32; }");
    let out = check_file("crates/dlflow-core/src/gantt.rs", &lexed);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].rule, "lossy-cast");
}

#[test]
fn reachability_distinguishes_loop_context() {
    let engine = "impl Engine { pub fn step(&mut self) { for j in jobs { settle(j); } audit(); } }";
    let util = "pub fn settle(j: &Job) {}\npub fn audit() {}\npub fn unused() {}";
    let files = [
        ("crates/x/src/engine.rs", engine),
        ("crates/x/src/util.rs", util),
    ];
    let lexed: Vec<_> = files.iter().map(|(_, s)| lex(s)).collect();
    let masks: Vec<Vec<bool>> = lexed.iter().map(|l| vec![false; l.tokens.len()]).collect();
    let items: Vec<_> = lexed
        .iter()
        .zip(&masks)
        .map(|(l, m)| parse_items(&l.tokens, m))
        .collect();
    let gfiles: Vec<GraphFile<'_>> = files
        .iter()
        .enumerate()
        .map(|(i, (p, _))| GraphFile {
            path: p,
            file_idx: i,
            tokens: &lexed[i].tokens,
            mask: &masks[i],
            items: &items[i],
        })
        .collect();
    let graph = Graph::build(&gfiles);
    let roots = graph.find(|f| f.item.name == "step");
    assert_eq!(roots.len(), 1);
    let reach = Reach::compute(&graph, &roots);

    let id_of = |name: &str| graph.find(|f| f.item.name == name)[0];
    assert!(reach.is_hot(id_of("settle")));
    assert!(reach.in_loop_ctx(id_of("settle"))); // called inside the for
    assert!(reach.is_hot(id_of("audit")));
    assert!(!reach.in_loop_ctx(id_of("audit"))); // straight-line call
    assert!(!reach.is_hot(id_of("unused")));
}

/// The ISSUE acceptance fixture: a helper called from `Engine::step` in
/// a *different module* is flagged with a rendered witness chain; the
/// identical helper left unreferenced stays clean.
#[test]
fn cross_module_hot_helper_is_flagged_with_chain() {
    let engine = "impl Engine { pub fn step(&mut self) { crate::util::drain_one(self); } }";
    let helper = "pub(crate) fn drain_one(e: &mut Engine) { e.q.pop().unwrap(); }";
    let flagged = analyze(vec![
        SourceFile {
            path: "crates/dlflow-sim/src/engine.rs".into(),
            source: engine.into(),
        },
        SourceFile {
            path: "crates/dlflow-sim/src/util.rs".into(),
            source: helper.into(),
        },
    ]);
    let panics: Vec<_> = flagged
        .findings
        .iter()
        .filter(|d| d.rule == "hot-path-panic")
        .collect();
    assert_eq!(panics.len(), 1);
    let d = panics[0];
    assert_eq!(d.file, "crates/dlflow-sim/src/util.rs");
    assert!(d.chain.first().unwrap().contains("Engine::step"));
    let human = d.render();
    assert!(
        human.contains("via Engine::step"),
        "chain missing from: {human}"
    );

    // Same helper with no caller: not on the hot path, no finding.
    let clean = analyze(vec![SourceFile {
        path: "crates/dlflow-sim/src/util.rs".into(),
        source: helper.into(),
    }]);
    assert!(clean.findings.iter().all(|d| d.rule != "hot-path-panic"));
}

/// Determinism property: output is a pure function of the file *set* —
/// byte-identical across repeated runs and any input ordering, in both
/// the human rendering and the JSON report.
#[test]
fn analysis_output_is_order_independent_and_repeatable() {
    let corpus: Vec<SourceFile> = vec![
        SourceFile {
            path: "crates/a/src/engine.rs".into(),
            source: "impl Engine { pub fn step(&mut self) { helper(); } }".into(),
        },
        SourceFile {
            path: "crates/a/src/util.rs".into(),
            source: "pub fn helper() { v.pop().unwrap(); }\npub fn lonely() {}".into(),
        },
        SourceFile {
            path: "crates/b/src/lib.rs".into(),
            source: "pub fn cast_it(x: u64) -> u32 { x as u32 }".into(),
        },
    ];
    let render = |files: Vec<SourceFile>| {
        let res = analyze(files);
        let human: String = res.findings.iter().map(|d| d.render() + "\n").collect();
        (human, res.to_json(false))
    };
    let baseline = render(corpus.clone());
    // Repeatability: same order, fresh run.
    assert_eq!(render(corpus.clone()), baseline);
    // Order independence: reversed and rotated permutations.
    let mut reversed = corpus.clone();
    reversed.reverse();
    assert_eq!(render(reversed), baseline);
    let mut rotated = corpus.clone();
    rotated.rotate_left(1);
    assert_eq!(render(rotated), baseline);
}
