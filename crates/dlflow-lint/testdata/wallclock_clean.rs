// Fixture: simulated time is the only clock.
struct Clock {
    now: f64,
}

impl Clock {
    fn advance(&mut self, dt: f64) {
        self.now += dt;
    }
}
