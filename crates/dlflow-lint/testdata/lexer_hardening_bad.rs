// Fixture: a real finding surrounded by syntax that trips naive
// lexers — raw strings, nested block comments, char literals holding
// delimiters, lifetime ticks. The cast on the last line must survive.
fn mix<'a>(x: u64, s: &'a str) -> u32 {
    let raw = r#"a raw " string with ) and `y as u8` inside"#;
    let raw2 = r##"one hash deep: "# still open here"##;
    /* block /* nested */ comment mentioning z as i16 */
    let close = ')';
    let quote = '"';
    let bq = b'\'';
    let _ = (raw, raw2, close, quote, bq, s);
    x as u32
}
