// Fixture: buffers hoisted out of the hot loop, reused per iteration.
fn step(ids: &[usize], scratch: &mut Vec<usize>) -> usize {
    let mut n = 0;
    for window in ids.chunks(2) {
        scratch.clear();
        scratch.extend_from_slice(window);
        n += scratch.len();
    }
    n
}
