// Fixture: the same traversal with allocation hoisted out of the loop,
// plus an allocating loop in a function the hot path never reaches.
impl Engine {
    fn step(&mut self) {
        batch_total(&self.ids, &mut self.scratch);
    }
}

fn batch_total(ids: &[usize], scratch: &mut Vec<usize>) -> usize {
    let mut n = 0;
    for window in ids.chunks(2) {
        scratch.clear();
        scratch.extend_from_slice(window);
        n += scratch.len();
    }
    n
}

fn cold_report(ids: &[usize]) -> Vec<String> {
    let mut out = Vec::new();
    for id in ids {
        out.push(format!("J{id}"));
    }
    out
}
