// Fixture: panics reachable from the per-event hot path, both directly
// in a root and transitively through a private helper.
impl Engine {
    fn step(&mut self) {
        let head = self.queue.pop().unwrap();
        if head == 0 {
            panic!("empty");
        }
        drain_tail(&mut self.queue);
    }
}

fn drain_tail(queue: &mut Vec<usize>) {
    queue.first().copied().expect("non-empty");
    todo!()
}
