// Fixture: panics reachable from the per-event hot path.
fn step(queue: &mut Vec<usize>) -> usize {
    let head = queue.pop().unwrap();
    if head == 0 {
        panic!("empty");
    }
    queue.first().copied().expect("non-empty")
}

fn drain() {
    todo!()
}
