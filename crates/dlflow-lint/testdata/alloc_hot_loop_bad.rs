// Fixture: allocations inside a loop in a hot function.
fn step(ids: &[usize]) -> usize {
    let mut n = 0;
    for window in ids.chunks(2) {
        let owned: Vec<usize> = window.to_vec();
        let label = format!("batch of {}", owned.len());
        n += label.len();
    }
    n
}
