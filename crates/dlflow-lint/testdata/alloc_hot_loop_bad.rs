// Fixture: allocations inside a loop, transitively under a hot root —
// the loop lives in a helper the root calls.
impl Engine {
    fn step(&mut self) {
        batch_labels(&self.ids);
    }
}

fn batch_labels(ids: &[usize]) -> usize {
    let mut n = 0;
    for window in ids.chunks(2) {
        let owned: Vec<usize> = window.to_vec();
        let label = format!("batch of {}", owned.len());
        n += label.len();
    }
    n
}
