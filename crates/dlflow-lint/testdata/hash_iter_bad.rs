// Fixture: HashMap/HashSet in a deterministic-output path.
use std::collections::{HashMap, HashSet};

struct Tally {
    counts: HashMap<String, usize>,
    seen: HashSet<usize>,
}
