// Fixture: ordered maps keep reports byte-stable.
use std::collections::{BTreeMap, BTreeSet};

struct Tally {
    counts: BTreeMap<String, usize>,
    seen: BTreeSet<usize>,
}
