// Fixture: exact float comparison outside the dyadic modules.
fn converged(x: f64, target: f64) -> bool {
    x == target || x - target == 0.0 || 1.5 != x
}
