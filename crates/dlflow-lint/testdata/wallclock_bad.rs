// Fixture: ambient wall-clock and entropy reads in library code.
use std::time::Instant;

fn stamp() -> Instant {
    Instant::now()
}

fn jitter() -> u64 {
    let t = std::time::SystemTime::now();
    t.elapsed().map(|d| d.as_nanos() as u64).unwrap_or(0)
}
