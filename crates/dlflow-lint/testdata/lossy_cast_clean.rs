// Fixture: widening casts and checked conversions are exact. The
// heuristic cannot see source types, so "clean" means widening to the
// tolerated targets (`i128`/`u128`/`f64`) or using `try_from`.
fn widen(x: u32, y: i64) -> (u128, i128, f64) {
    (x as u128, y as i128, x as f64)
}

fn checked(x: u64) -> Option<u32> {
    u32::try_from(x).ok()
}
