// Fixture: every would-be finding is inside a literal or comment — a
// lexer that mis-tracks raw-string hashes, nested block comments, or
// char literals will hallucinate findings here.
fn mix<'a>(s: &'a str) -> usize {
    let raw = r#"x as u32 and v.unwrap() and a == 0.0 in a raw string"#;
    let raw2 = r##"HashMap::new() beyond "# one hash"##;
    /* outer /* inner: y as u8, w != 1.5 */ still comment: q as usize */
    let close = ')';
    let quote = '"';
    let bq = b'"';
    let esc = "escaped \" quote then `z as i64`";
    raw.len() + raw2.len() + esc.len() + s.len() + usize::from(close == quote) + usize::from(bq)
}
