// Fixture: tolerance and total_cmp comparisons.
fn converged(x: f64, target: f64) -> bool {
    (x - target).abs() < 1e-9
}

fn same_order(a: f64, b: f64) -> bool {
    a.total_cmp(&b) == std::cmp::Ordering::Equal
}

fn int_eq(a: u64, b: u64) -> bool {
    a == b // integer equality is exact
}
