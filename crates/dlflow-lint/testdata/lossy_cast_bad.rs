// Fixture: truncating casts in an exact-arithmetic path.
fn narrow(x: u64, y: f64) -> (u32, i64, usize) {
    (x as u32, y as i64, x as usize)
}
