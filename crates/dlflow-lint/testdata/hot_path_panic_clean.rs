// Fixture: the same shape with every failure handled structurally —
// and a panic in a function the hot path never reaches.
impl Engine {
    fn step(&mut self) {
        let Some(head) = self.queue.pop() else {
            return;
        };
        if head == 0 {
            return;
        }
        drain_tail(&mut self.queue);
    }
}

fn drain_tail(queue: &mut Vec<usize>) {
    if let Some(v) = queue.first().copied() {
        queue.truncate(v);
    }
}

fn cold_diagnostic_only() {
    // Unreachable from any root: panicking here is fine.
    panic!("not on the hot path");
}
