// Fixture: typed errors and let-else instead of panics.
fn step(queue: &mut Vec<usize>) -> Result<usize, String> {
    let Some(head) = queue.pop() else {
        return Err("queue empty".to_string());
    };
    // unwrap_or-family combinators are total, not panicking.
    Ok(queue.first().copied().unwrap_or(head))
}
