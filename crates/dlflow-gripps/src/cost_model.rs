//! Affine cost model and regression — the analysis behind Figure 1.
//!
//! The paper fits `time = slope · size + overhead` to both partitioning
//! experiments and reads off the overheads (1.1 s for sequence-set
//! partitioning, 10.5 s for motif-set partitioning). We provide the same
//! least-squares machinery plus a calibrated analytic model that lets the
//! scheduling experiments work with deterministic costs.

/// Ordinary least squares for `y ≈ slope·x + intercept`.
///
/// Returns `(slope, intercept, r²)`. Requires at least two distinct `x`.
pub fn linear_regression(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    assert!(xs.len() >= 2, "regression needs at least two points");
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
        syy += (y - mean_y) * (y - mean_y);
    }
    assert!(sxx > 0.0, "regression needs at least two distinct x values");
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    // dlflint:allow(float-eq, "syy is exactly 0.0 iff every y is identical (degenerate fit)")
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    (slope, intercept, r2)
}

/// Calibrated affine cost model of a GriPPS invocation on one server.
///
/// `time(work, bank_residues) = invocation_overhead
///                            + bank_parse_per_residue · bank_residues
///                            + seconds_per_unit · work`
///
/// * `work` = scanned residues × motifs (the divisible quantity),
/// * `bank_residues` = size of the databank parsed at invocation start —
///   the term that makes *motif partitioning* pay a large fixed cost
///   (the full bank is re-parsed by every sub-invocation) while *sequence
///   partitioning* does not (each sub-invocation parses only its block).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Fixed startup (process launch, motif compilation), seconds.
    pub invocation_overhead: f64,
    /// Databank parse/index cost per residue, seconds.
    pub bank_parse_per_residue: f64,
    /// Scan cost per work unit (residue × motif), seconds.
    pub seconds_per_unit: f64,
}

impl CostModel {
    /// A model calibrated so that the paper's full-size experiment
    /// (≈38 000 sequences ≈ 13.3 M residues, ≈300 motifs) lands in the
    /// same range as Figure 1: full-bank scans ≈ 100–120 s, sequence-
    /// partitioning intercept ≈ 1.1 s, motif-partitioning intercept
    /// ≈ 10.5 s.
    pub fn paper_scale() -> CostModel {
        CostModel {
            invocation_overhead: 1.1,
            // 13.3 M residues × 7e-7 ≈ 9.3 s: bank parse ⇒ 1.1 + 9.3 ≈ 10.5 s
            // intercept for motif partitioning.
            bank_parse_per_residue: 7.0e-7,
            // 13.3 M residues × 300 motifs ≈ 4.0e9 work units; × 2.5e-8
            // ≈ 100 s at full size, matching Figure 1's vertical scale.
            seconds_per_unit: 2.5e-8,
        }
    }

    /// Predicted wall-clock of one invocation.
    pub fn invocation_time(&self, work_units: f64, bank_residues: f64) -> f64 {
        self.invocation_overhead
            + self.bank_parse_per_residue * bank_residues
            + self.seconds_per_unit * work_units
    }

    /// Sequence-partitioning series (Figure 1a): the motif set is fixed at
    /// `n_motifs`; each point scans a block of `block_residues`. The block
    /// itself is what gets parsed.
    pub fn sequence_partition_time(&self, block_residues: f64, n_motifs: f64) -> f64 {
        self.invocation_time(block_residues * n_motifs, block_residues)
    }

    /// Motif-partitioning series (Figure 1b): the databank is fixed at
    /// `bank_residues`; each point scans `motif_subset` motifs, but the
    /// *entire* bank must be parsed first.
    pub fn motif_partition_time(&self, motif_subset: f64, bank_residues: f64) -> f64 {
        self.invocation_time(bank_residues * motif_subset, bank_residues)
    }

    /// Fits a model to measured `(work_units, bank_residues, seconds)`
    /// triples in which `bank_residues` is constant: returns
    /// `(slope_per_unit, fixed_overhead, r²)`.
    pub fn fit_fixed_bank(samples: &[(f64, f64)]) -> (f64, f64, f64) {
        let xs: Vec<f64> = samples.iter().map(|s| s.0).collect();
        let ys: Vec<f64> = samples.iter().map(|s| s.1).collect();
        linear_regression(&xs, &ys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_exact_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let (m, b, r2) = linear_regression(&xs, &ys);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((b - 1.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn regression_with_noise_keeps_high_r2() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| {
                3.0 * x
                    + 10.0
                    + if (x as u64).is_multiple_of(2) {
                        0.5
                    } else {
                        -0.5
                    }
            })
            .collect::<Vec<_>>();
        let (m, b, r2) = linear_regression(&xs, &ys);
        assert!((m - 3.0).abs() < 0.01);
        assert!((b - 10.0).abs() < 0.5);
        assert!(r2 > 0.999);
    }

    #[test]
    #[should_panic(expected = "distinct x")]
    fn regression_rejects_constant_x() {
        let _ = linear_regression(&[1.0, 1.0], &[2.0, 3.0]);
    }

    #[test]
    fn paper_scale_reproduces_figure1_intercepts() {
        let m = CostModel::paper_scale();
        let bank = 38_000.0 * 350.0; // ≈ 13.3 M residues
        let motifs = 300.0;

        // Figure 1(a): sweep block size, fixed motif set; regress on residues.
        let blocks: Vec<f64> = (1..=20).map(|k| bank * k as f64 / 20.0).collect();
        let times: Vec<f64> = blocks
            .iter()
            .map(|&b| m.sequence_partition_time(b, motifs))
            .collect();
        let (_, intercept_a, r2a) = linear_regression(&blocks, &times);
        assert!(
            (intercept_a - 1.1).abs() < 0.2,
            "seq intercept {intercept_a}"
        );
        assert!(r2a > 0.9999);

        // Figure 1(b): sweep motif subset, fixed full bank.
        let subsets: Vec<f64> = (1..=20).map(|k| motifs * k as f64 / 20.0).collect();
        let times: Vec<f64> = subsets
            .iter()
            .map(|&s| m.motif_partition_time(s, bank))
            .collect();
        let (_, intercept_b, r2b) = linear_regression(&subsets, &times);
        assert!(
            (intercept_b - 10.5).abs() < 0.5,
            "motif intercept {intercept_b}"
        );
        assert!(r2b > 0.9999);

        // Full-size scan lands near the figure's ~100 s scale.
        let full = m.sequence_partition_time(bank, motifs);
        assert!(full > 80.0 && full < 130.0, "full scan {full}");
    }

    #[test]
    fn intercept_asymmetry_matches_paper() {
        // The motif-partitioning overhead must dominate the sequence-
        // partitioning overhead by roughly an order of magnitude (10.5 vs 1.1).
        let m = CostModel::paper_scale();
        let bank = 38_000.0 * 350.0;
        let seq_overhead = m.invocation_overhead; // block → 0 limit
        let motif_overhead = m.invocation_time(0.0, bank);
        assert!(motif_overhead / seq_overhead > 5.0);
    }

    #[test]
    fn fit_recovers_model() {
        let m = CostModel::paper_scale();
        let bank = 1e6;
        let samples: Vec<(f64, f64)> = (1..=10)
            .map(|k| {
                let motifs = 30.0 * k as f64;
                (motifs, m.motif_partition_time(motifs, bank))
            })
            .collect();
        let (slope, overhead, r2) = CostModel::fit_fixed_bank(&samples);
        assert!((slope - m.seconds_per_unit * bank).abs() / slope < 1e-9);
        assert!(
            (overhead - (m.invocation_overhead + m.bank_parse_per_residue * bank)).abs() < 1e-9
        );
        assert!((r2 - 1.0).abs() < 1e-12);
    }
}
