//! The motif-scanning engine — the computational payload of GriPPS.
//!
//! A motif with variable-length gaps is matched at every anchor position
//! by depth-first search over elements (equivalent to an NFA walk). The
//! engine reports match positions and, crucially for the paper's Figure 1,
//! the *work* it performed, which grows linearly in
//! `total residues × number of motifs`.

use crate::databank::Databank;
use crate::motif::Motif;
use crate::sequence::ProteinSequence;
use rayon::prelude::*;

/// One motif occurrence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Match {
    /// Index of the sequence in the scanned databank.
    pub sequence: usize,
    /// Index of the motif in the scanned motif set.
    pub motif: usize,
    /// Start offset (residues).
    pub start: usize,
    /// End offset (exclusive).
    pub end: usize,
}

/// Scan outcome with the work accounting used by the cost experiments.
#[derive(Clone, Debug, Default)]
pub struct ScanReport {
    /// All matches found (leftmost-shortest per anchor).
    pub matches: Vec<Match>,
    /// Residues visited by the matcher (the principal cost driver).
    pub residues_scanned: u64,
    /// `Σ_seq Σ_motif len(seq)` — the nominal work volume `W`.
    pub work_units: u64,
}

/// Matches `motif` anchored at `pos`; returns the end offset of the
/// shortest match, or `None`. Also counts visited residues into `steps`.
fn match_at(seq: &[u8], pos: usize, motif: &Motif, steps: &mut u64) -> Option<usize> {
    // Iterative DFS over (element index, offset) with per-element
    // repetition choice min..=max, preferring the shortest expansion.
    fn rec(seq: &[u8], motif: &Motif, elem: usize, off: usize, steps: &mut u64) -> Option<usize> {
        if elem == motif.elements.len() {
            return Some(off);
        }
        let e = &motif.elements[elem];
        // Mandatory part: e.min repetitions.
        let mut cur = off;
        for _ in 0..e.min {
            if cur >= seq.len() {
                return None;
            }
            *steps += 1;
            if !e.atom.matches(seq[cur]) {
                return None;
            }
            cur += 1;
        }
        // Optional extras: try shortest first.
        for extra in 0..=(e.max - e.min) {
            if extra > 0 {
                let idx = cur + extra as usize - 1;
                if idx >= seq.len() {
                    return None;
                }
                *steps += 1;
                if !e.atom.matches(seq[idx]) {
                    return None;
                }
            }
            if let Some(end) = rec(seq, motif, elem + 1, cur + extra as usize, steps) {
                return Some(end);
            }
        }
        None
    }
    rec(seq, motif, 0, pos, steps)
}

/// Scans one sequence for one motif; returns matches (non-overlapping
/// anchors are all tried; occurrences may overlap).
pub fn scan_sequence(
    seq: &ProteinSequence,
    motif: &Motif,
    seq_idx: usize,
    motif_idx: usize,
) -> (Vec<Match>, u64) {
    let mut out = Vec::new();
    let mut steps = 0u64;
    let residues = &seq.residues;
    let min_span = motif.min_span();
    if residues.len() < min_span {
        // Still costs a look at the sequence header/length.
        return (out, 1);
    }
    for pos in 0..=(residues.len() - min_span) {
        if let Some(end) = match_at(residues, pos, motif, &mut steps) {
            out.push(Match {
                sequence: seq_idx,
                motif: motif_idx,
                start: pos,
                end,
            });
        }
    }
    (out, steps)
}

/// Scans a whole databank against a motif set, in parallel over sequences.
pub fn scan_databank(bank: &Databank, motifs: &[Motif]) -> ScanReport {
    let per_seq: Vec<(Vec<Match>, u64)> = bank
        .sequences
        .par_iter()
        .enumerate()
        .map(|(si, seq)| {
            let mut matches = Vec::new();
            let mut steps = 0u64;
            for (mi, motif) in motifs.iter().enumerate() {
                let (mut ms, st) = scan_sequence(seq, motif, si, mi);
                matches.append(&mut ms);
                steps += st;
            }
            (matches, steps)
        })
        .collect();

    let mut report = ScanReport::default();
    for (mut ms, st) in per_seq {
        report.matches.append(&mut ms);
        report.residues_scanned += st;
    }
    report.work_units = bank.total_residues() as u64 * motifs.len() as u64;
    report
}

/// A full GriPPS *invocation*: parse the databank from FASTA text, parse
/// the motif set from source, scan. The FASTA re-parse is the fixed
/// per-invocation overhead that dominates Figure 1(b)'s intercept.
pub fn invoke(fasta_text: &str, motif_sources: &[&str]) -> Result<ScanReport, String> {
    let sequences = crate::sequence::parse_fasta(fasta_text).map_err(|e| e.to_string())?;
    let bank = Databank { sequences };
    let motifs: Result<Vec<Motif>, _> = motif_sources.iter().map(|s| Motif::parse(s)).collect();
    let motifs = motifs.map_err(|e| e.to_string())?;
    Ok(scan_databank(&bank, &motifs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::databank::DatabankSpec;

    fn seq(id: &str, s: &str) -> ProteinSequence {
        ProteinSequence::new(id, s).unwrap()
    }

    #[test]
    fn exact_motif_found() {
        let s = seq("t", "AAACDEAAA");
        let m = Motif::parse("C-D-E").unwrap();
        let (ms, _) = scan_sequence(&s, &m, 0, 0);
        assert_eq!(
            ms,
            vec![Match {
                sequence: 0,
                motif: 0,
                start: 3,
                end: 6
            }]
        );
    }

    #[test]
    fn variable_gap_matches_shortest() {
        let s = seq("t", "CAAS");
        let m = Motif::parse("C-x(1,3)-S").unwrap();
        let (ms, _) = scan_sequence(&s, &m, 0, 0);
        assert_eq!(ms.len(), 1);
        assert_eq!((ms[0].start, ms[0].end), (0, 4));
    }

    #[test]
    fn gap_backtracking_works() {
        // C-x(1,2)-S on "CAS": gap of 1 → match; on "CAAS": gap of 2.
        let m = Motif::parse("C-x(1,2)-S").unwrap();
        let (ms, _) = scan_sequence(&seq("a", "CAS"), &m, 0, 0);
        assert_eq!(ms.len(), 1);
        let (ms, _) = scan_sequence(&seq("b", "CAAS"), &m, 0, 0);
        assert_eq!(ms.len(), 1);
        let (ms, _) = scan_sequence(&seq("c", "CAAAS"), &m, 0, 0);
        assert!(ms.is_empty());
    }

    #[test]
    fn classes_and_negations() {
        let m = Motif::parse("[ST]-{P}-C").unwrap();
        let (ms, _) = scan_sequence(&seq("a", "SAC"), &m, 0, 0);
        assert_eq!(ms.len(), 1);
        let (ms, _) = scan_sequence(&seq("b", "SPC"), &m, 0, 0);
        assert!(ms.is_empty());
        let (ms, _) = scan_sequence(&seq("c", "TGC"), &m, 0, 0);
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn multiple_occurrences() {
        let s = seq("t", "ACAACAACA");
        let m = Motif::parse("A-C").unwrap();
        let (ms, _) = scan_sequence(&s, &m, 0, 0);
        assert_eq!(ms.len(), 3);
    }

    #[test]
    fn too_short_sequence() {
        let s = seq("t", "AC");
        let m = Motif::parse("A-C-D-E").unwrap();
        let (ms, steps) = scan_sequence(&s, &m, 0, 0);
        assert!(ms.is_empty());
        assert_eq!(steps, 1);
    }

    #[test]
    fn databank_scan_aggregates() {
        let bank = Databank {
            sequences: vec![seq("a", "ACDEF"), seq("b", "CCCCC"), seq("c", "ACACA")],
        };
        let motifs = vec![Motif::parse("A-C").unwrap(), Motif::parse("C-C").unwrap()];
        let rep = scan_databank(&bank, &motifs);
        let ac = rep.matches.iter().filter(|m| m.motif == 0).count();
        let cc = rep.matches.iter().filter(|m| m.motif == 1).count();
        assert_eq!(ac, 3); // "ACDEF" has 1, "ACACA" has 2
        assert_eq!(cc, 4); // "CCCCC" has 4
        assert_eq!(rep.work_units, 15 * 2);
        assert!(rep.residues_scanned > 0);
    }

    #[test]
    fn work_scales_linearly_with_subset_size() {
        // The divisibility property of §2: nominal work ∝ residues × motifs.
        let bank = Databank::generate(&DatabankSpec {
            n_sequences: 100,
            mean_len: 80,
            min_len: 20,
            seed: 3,
        });
        let motifs = Motif::random_set(4, 5, 11);
        let full = scan_databank(&bank, &motifs);
        let half = scan_databank(&bank.random_subset(50, 1), &motifs);
        // work_units are exactly proportional to residue counts.
        let ratio = half.work_units as f64 / full.work_units as f64;
        let residue_ratio =
            bank.random_subset(50, 1).total_residues() as f64 / bank.total_residues() as f64;
        assert!((ratio - residue_ratio).abs() < 1e-12);
    }

    #[test]
    fn invocation_parses_and_scans() {
        let fasta = ">s1\nACDEF\n>s2\nGGCDE\n";
        let rep = invoke(fasta, &["C-D-E"]).unwrap();
        assert_eq!(rep.matches.len(), 2);
        assert!(invoke(">s\nAC1\n", &["A"]).is_err());
        assert!(invoke(fasta, &["A--"]).is_err());
    }
}
