//! The 20-letter amino-acid alphabet and background frequencies.

/// The 20 standard amino acids, one-letter codes, in a fixed order.
pub const AMINO_ACIDS: [u8; 20] = [
    b'A', b'C', b'D', b'E', b'F', b'G', b'H', b'I', b'K', b'L', b'M', b'N', b'P', b'Q', b'R', b'S',
    b'T', b'V', b'W', b'Y',
];

/// Approximate natural abundance of each amino acid (UniProt-like), in the
/// order of [`AMINO_ACIDS`]. Sums to ~1; used to synthesize realistic
/// sequence composition so motif hit-rates resemble real databank scans.
pub const BACKGROUND_FREQ: [f64; 20] = [
    0.0826, 0.0137, 0.0546, 0.0675, 0.0386, 0.0708, 0.0227, 0.0593, 0.0582, 0.0965, 0.0241, 0.0406,
    0.0472, 0.0393, 0.0553, 0.0660, 0.0535, 0.0687, 0.0110, 0.0292,
];

/// Index of a one-letter code in [`AMINO_ACIDS`], or `None` for non-residues.
pub fn index_of(code: u8) -> Option<usize> {
    AMINO_ACIDS
        .iter()
        .position(|&c| c == code.to_ascii_uppercase())
}

/// `true` iff `code` is a standard amino-acid one-letter code.
pub fn is_residue(code: u8) -> bool {
    index_of(code).is_some()
}

/// Cumulative distribution over [`BACKGROUND_FREQ`] for inverse-CDF sampling.
pub fn background_cdf() -> [f64; 20] {
    let mut cdf = [0.0f64; 20];
    let mut acc = 0.0;
    for (i, f) in BACKGROUND_FREQ.iter().enumerate() {
        acc += f;
        cdf[i] = acc;
    }
    // Normalize the tail so sampling never falls off the end.
    cdf[19] = 1.0;
    cdf
}

/// Samples a residue index from the background distribution given a
/// uniform `u ∈ [0, 1)`.
pub fn sample_residue(cdf: &[f64; 20], u: f64) -> u8 {
    let idx = cdf.partition_point(|&c| c < u).min(19);
    AMINO_ACIDS[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabet_is_consistent() {
        assert_eq!(AMINO_ACIDS.len(), 20);
        assert_eq!(BACKGROUND_FREQ.len(), 20);
        for (i, &c) in AMINO_ACIDS.iter().enumerate() {
            assert_eq!(index_of(c), Some(i));
        }
        assert_eq!(index_of(b'a'), Some(0)); // case-insensitive
        assert_eq!(index_of(b'B'), None); // ambiguity codes excluded
        assert_eq!(index_of(b'X'), None);
        assert!(is_residue(b'W'));
        assert!(!is_residue(b'-'));
    }

    #[test]
    fn frequencies_sum_to_one() {
        let sum: f64 = BACKGROUND_FREQ.iter().sum();
        assert!((sum - 1.0).abs() < 0.01, "sum = {sum}");
    }

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let cdf = background_cdf();
        for w in cdf.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(cdf[19], 1.0);
    }

    #[test]
    fn sampling_covers_extremes() {
        let cdf = background_cdf();
        assert_eq!(sample_residue(&cdf, 0.0), b'A');
        assert!(is_residue(sample_residue(&cdf, 0.9999)));
        assert!(is_residue(sample_residue(&cdf, 0.5)));
    }
}
