//! # dlflow-gripps — the GriPPS application model
//!
//! A synthetic but *functional* stand-in for the GriPPS protein-motif
//! comparison application of §2 of the paper: real pattern matching over
//! synthetic protein databanks, with the measurable cost structure the
//! paper's Figure 1 reports —
//!
//! * scan time affine in the sequence-block size with a **small**
//!   intercept (≈1.1 s in the paper): partitioning the databank is
//!   nearly free ⇒ the workload is divisible along sequences;
//! * scan time affine in the motif-subset size with a **large**
//!   intercept (≈10.5 s): every sub-invocation re-parses the full
//!   databank ⇒ partitioning along motifs pays a fixed overhead.
//!
//! The paper's real databanks and cluster are unavailable; the
//! substitution (documented in DESIGN.md) preserves the properties the
//! scheduling theory consumes: linearity, intercept asymmetry, and the
//! restricted-availability placement structure.
//!
//! [`platform`] turns fleets of databank servers plus request batches
//! into scheduling instances (uniform machines with restricted
//! availabilities, §3), and its [`PlatformFamily`] / [`RequestFamily`]
//! parameterize whole *distributions* of platforms and load-calibrated
//! workloads — the axes the `dlflow-sim` campaign engine sweeps.
//!
//! ## Example
//!
//! ```
//! use dlflow_gripps::databank::{Databank, DatabankSpec};
//! use dlflow_gripps::motif::Motif;
//! use dlflow_gripps::scan::scan_databank;
//!
//! let bank = Databank::generate(&DatabankSpec { n_sequences: 50, ..Default::default() });
//! let motifs = Motif::random_set(5, 6, 42);
//! let report = scan_databank(&bank, &motifs);
//! assert_eq!(report.work_units, bank.total_residues() as u64 * 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alphabet;
pub mod cost_model;
pub mod databank;
pub mod motif;
pub mod platform;
pub mod scan;
pub mod sequence;

pub use cost_model::{linear_regression, CostModel};
pub use databank::{Databank, DatabankSpec};
pub use motif::Motif;
pub use platform::{
    fastest_scan_seconds, random_requests, PlatformFamily, PlatformSpec, Request, RequestFamily,
    ServerSpec,
};
pub use scan::{invoke, scan_databank, Match, ScanReport};
pub use sequence::{parse_fasta, to_fasta, ProteinSequence};
