//! Heterogeneous databank-server fleets → scheduling instances.
//!
//! This is the bridge from the application model (§2) to the scheduling
//! model (§3): servers with different speeds each hold a subset of the
//! databanks; a comparison request targets one databank and can only run
//! where that databank is replicated; the resulting cost matrix is the
//! *uniform machines with restricted availabilities* structure the paper
//! identifies (a special case of unrelated machines).

use crate::cost_model::CostModel;
use dlflow_core::instance::{round_sig_bits, Instance, InstanceError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Cycle times in [`PlatformSpec::instance_dyadic`] are rounded to this
/// many significand bits (sizes get the caller's `sig_bits`); the
/// per-cost product then carries `sig_bits + CYCLE_SIG_BITS` bits, still
/// far inside `f64`/inline-`Rat` range.
pub const CYCLE_SIG_BITS: u32 = 8;

/// One sequence-comparison server.
#[derive(Clone, Debug)]
pub struct ServerSpec {
    /// Relative cycle time: seconds per work unit (lower = faster).
    pub cycle_time: f64,
    /// Indices (into [`PlatformSpec::databank_residues`]) of locally
    /// replicated databanks.
    pub databanks: Vec<usize>,
}

/// A fleet of servers and the databanks they replicate.
#[derive(Clone, Debug)]
pub struct PlatformSpec {
    /// Servers.
    pub servers: Vec<ServerSpec>,
    /// Size (total residues) of each databank.
    pub databank_residues: Vec<f64>,
}

/// One motif-comparison request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Databank to compare against.
    pub databank: usize,
    /// Number of motifs in the query.
    pub n_motifs: f64,
    /// Release date (seconds).
    pub release: f64,
    /// Priority weight.
    pub weight: f64,
}

impl PlatformSpec {
    /// A deterministic random platform: `n_servers` with cycle times in
    /// `[1, heterogeneity]`, `n_databanks` each replicated on a random
    /// non-empty subset of servers.
    pub fn random(
        n_servers: usize,
        n_databanks: usize,
        heterogeneity: f64,
        seed: u64,
    ) -> PlatformSpec {
        assert!(n_servers > 0 && n_databanks > 0);
        assert!(heterogeneity >= 1.0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut servers: Vec<ServerSpec> = (0..n_servers)
            .map(|_| ServerSpec {
                cycle_time: rng.gen_range(1.0..=heterogeneity),
                databanks: Vec::new(),
            })
            .collect();
        let databank_residues: Vec<f64> = (0..n_databanks)
            .map(|_| rng.gen_range(1.0e5..2.0e7))
            .collect();
        for d in 0..n_databanks {
            // Each databank lands on every server with p = 1/2, but at
            // least one replica is forced.
            let mut any = false;
            for s in servers.iter_mut() {
                if rng.gen_bool(0.5) {
                    s.databanks.push(d);
                    any = true;
                }
            }
            if !any {
                let s = rng.gen_range(0..n_servers);
                servers[s].databanks.push(d);
            }
        }
        PlatformSpec {
            servers,
            databank_residues,
        }
    }

    /// Does server `i` hold databank `d`?
    pub fn holds(&self, server: usize, databank: usize) -> bool {
        self.servers[server].databanks.contains(&databank)
    }

    /// Work volume (residues × motifs) of a request.
    pub fn request_work(&self, req: &Request) -> f64 {
        self.databank_residues[req.databank] * req.n_motifs
    }

    /// Builds the unrelated-machines [`Instance`] for a request batch under
    /// a cost model. `c[i][j] = scan seconds on server i`, infinite where
    /// the databank is absent. The per-invocation overhead is *not*
    /// included: the scheduling model of §3 neglects it, as justified by
    /// the §2 measurements (sequence-partitioning overhead ≈ 1 s ≪ scan
    /// time) — the same simplification the paper makes.
    pub fn instance(
        &self,
        requests: &[Request],
        model: &CostModel,
    ) -> Result<Instance<f64>, InstanceError> {
        self.build_instance(requests, model, |v| v, |v| v)
    }

    /// Shared body of [`PlatformSpec::instance`] /
    /// [`PlatformSpec::instance_dyadic`]: `round_time` is applied to
    /// request sizes and releases, `round_cycle` to server cycle times,
    /// *before* the cost products are formed.
    fn build_instance(
        &self,
        requests: &[Request],
        model: &CostModel,
        round_time: impl Fn(f64) -> f64,
        round_cycle: impl Fn(f64) -> f64,
    ) -> Result<Instance<f64>, InstanceError> {
        let sizes: Vec<f64> = requests
            .iter()
            .map(|r| round_time(self.request_work(r) * model.seconds_per_unit))
            .collect();
        let releases: Vec<f64> = requests.iter().map(|r| round_time(r.release)).collect();
        let weights: Vec<f64> = requests.iter().map(|r| r.weight).collect();
        let cycle: Vec<f64> = self
            .servers
            .iter()
            .map(|s| round_cycle(s.cycle_time))
            .collect();
        let avail: Vec<Vec<bool>> = self
            .servers
            .iter()
            .map(|s| {
                requests
                    .iter()
                    .map(|r| s.databanks.contains(&r.databank))
                    .collect()
            })
            .collect();
        Instance::uniform_restricted(&sizes, &releases, &weights, &cycle, &avail)
    }

    /// Like [`PlatformSpec::instance`], but every size/release is rounded
    /// to `sig_bits` significand bits and every cycle time to
    /// [`CYCLE_SIG_BITS`] **before** the cost products are formed. The
    /// resulting `f64` instance is exactly dyadic (lossless under
    /// `Instance::to_exact_dyadic`) *and* still factorizes exactly as
    /// `c[i][j] = W_j·s_i`, so the exact Theorem-2 yardstick can use the
    /// combinatorial max-flow probe of `dlflow_core::uniform` instead of
    /// LP probes. This is the instance builder campaign runs use.
    pub fn instance_dyadic(
        &self,
        requests: &[Request],
        model: &CostModel,
        sig_bits: u32,
    ) -> Result<Instance<f64>, InstanceError> {
        self.build_instance(
            requests,
            model,
            |v| round_sig_bits(v, sig_bits),
            |v| round_sig_bits(v, CYCLE_SIG_BITS),
        )
    }
}

/// Seconds the *fastest* holder of the request's databank needs for the
/// scan (ignoring the per-invocation overhead, like
/// [`PlatformSpec::instance`]). Returns `None` when no server holds the
/// databank.
pub fn fastest_scan_seconds(
    platform: &PlatformSpec,
    model: &CostModel,
    req: &Request,
) -> Option<f64> {
    let work = platform.request_work(req) * model.seconds_per_unit;
    platform
        .servers
        .iter()
        .filter(|s| s.databanks.contains(&req.databank))
        .map(|s| s.cycle_time * work)
        .min_by(|a, b| a.partial_cmp(b).unwrap())
}

/// A named, parameterized family of random platforms: one concrete
/// [`PlatformSpec`] per seed, all drawn from the same knob settings.
/// Campaign configs sweep the cross-product of platform families ×
/// workload families × seeds (see `dlflow-sim`'s campaign module).
#[derive(Clone, Debug)]
pub struct PlatformFamily {
    /// Family name, used as the `platform` column of campaign reports.
    pub name: String,
    /// Number of databank servers.
    pub n_servers: usize,
    /// Number of distinct databanks.
    pub n_databanks: usize,
    /// Cycle-time heterogeneity: cycle ∈ `[1, heterogeneity]`.
    pub heterogeneity: f64,
}

impl PlatformFamily {
    /// Draws the family's platform for `seed`.
    pub fn realize(&self, seed: u64) -> PlatformSpec {
        PlatformSpec::random(self.n_servers, self.n_databanks, self.heterogeneity, seed)
    }
}

/// A named, parameterized family of request batches. Arrival times are
/// expressed through a *load factor* rather than absolute seconds: after
/// drawing the batch, release dates are scaled so that
///
/// ```text
/// load = Σ_j fastest_scan_seconds(j)  /  (n_servers · span)
/// ```
///
/// i.e. `load = 1` offers exactly as much work as the fleet could absorb
/// running flat out on fastest replicas over the arrival span; `load > 1`
/// over-subscribes it (the stretch-interesting regime), `load < 1`
/// leaves slack. This makes one workload family meaningful across
/// platform families of different sizes and speeds.
#[derive(Clone, Debug)]
pub struct RequestFamily {
    /// Family name, used as the `workload` column of campaign reports.
    pub name: String,
    /// Requests per batch.
    pub n_requests: usize,
    /// Offered-load factor (see type docs). Must be positive.
    pub load: f64,
}

impl RequestFamily {
    /// Draws the family's request batch for `seed` against a platform,
    /// scaling releases to the family's load factor.
    pub fn realize(&self, platform: &PlatformSpec, model: &CostModel, seed: u64) -> Vec<Request> {
        assert!(self.load > 0.0, "load factor must be positive");
        let mut reqs = random_requests(platform, self.n_requests, 1.0, seed);
        let total_fastest: f64 = reqs
            .iter()
            .map(|r| {
                fastest_scan_seconds(platform, model, r)
                    .expect("random_requests only targets placed databanks")
            })
            .sum();
        let span = total_fastest / (platform.servers.len() as f64 * self.load);
        for r in &mut reqs {
            r.release *= span;
        }
        reqs
    }
}

/// A deterministic random request batch against a platform.
pub fn random_requests(platform: &PlatformSpec, n: usize, horizon: f64, seed: u64) -> Vec<Request> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_banks = platform.databank_residues.len();
    let mut reqs: Vec<Request> = (0..n)
        .map(|_| Request {
            databank: rng.gen_range(0..n_banks),
            n_motifs: rng.gen_range(10.0..400.0),
            release: rng.gen_range(0.0..horizon),
            weight: *[1.0, 2.0, 5.0].get(rng.gen_range(0..3usize)).unwrap(),
        })
        .collect();
    reqs.sort_by(|a, b| a.release.partial_cmp(&b.release).unwrap());
    reqs
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlflow_core::instance::Cost;

    #[test]
    fn random_platform_always_places_databanks() {
        for seed in 0..20 {
            let p = PlatformSpec::random(4, 6, 3.0, seed);
            for d in 0..6 {
                assert!(
                    (0..4).any(|s| p.holds(s, d)),
                    "databank {d} unplaced (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn instance_reflects_placement_and_speed() {
        let p = PlatformSpec {
            servers: vec![
                ServerSpec {
                    cycle_time: 1.0,
                    databanks: vec![0],
                },
                ServerSpec {
                    cycle_time: 2.0,
                    databanks: vec![0, 1],
                },
            ],
            databank_residues: vec![1.0e6, 2.0e6],
        };
        let model = CostModel::paper_scale();
        let reqs = vec![
            Request {
                databank: 0,
                n_motifs: 100.0,
                release: 0.0,
                weight: 1.0,
            },
            Request {
                databank: 1,
                n_motifs: 50.0,
                release: 5.0,
                weight: 2.0,
            },
        ];
        let inst = p.instance(&reqs, &model).unwrap();
        assert_eq!(inst.n_jobs(), 2);
        assert_eq!(inst.n_machines(), 2);
        // Request 0 runs on both; request 1 only on server 1.
        assert!(inst.cost(0, 0).is_finite());
        assert!(inst.cost(1, 0).is_finite());
        assert_eq!(inst.cost(0, 1), &Cost::Infinite);
        assert!(inst.cost(1, 1).is_finite());
        // Server 1 is twice as slow on the shared request.
        let c0 = *inst.cost(0, 0).finite().unwrap();
        let c1 = *inst.cost(1, 0).finite().unwrap();
        assert!((c1 / c0 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unplaceable_request_is_rejected() {
        let p = PlatformSpec {
            servers: vec![ServerSpec {
                cycle_time: 1.0,
                databanks: vec![0],
            }],
            databank_residues: vec![1.0e6, 2.0e6],
        };
        let reqs = vec![Request {
            databank: 1,
            n_motifs: 10.0,
            release: 0.0,
            weight: 1.0,
        }];
        assert!(p.instance(&reqs, &CostModel::paper_scale()).is_err());
    }

    #[test]
    fn instance_dyadic_is_lossless_and_still_uniform() {
        use dlflow_core::uniform::uniform_factors;
        let p = PlatformSpec::random(4, 5, 3.0, 42);
        let model = CostModel::paper_scale();
        let reqs = random_requests(&p, 8, 100.0, 7);
        let inst = p.instance_dyadic(&reqs, &model, 12).unwrap();
        let exact = inst.to_exact_dyadic();
        // Lossless f64 ↔ Rat round trip on every finite entry.
        for j in 0..inst.n_jobs() {
            assert_eq!(exact.job(j).release.to_f64(), inst.job(j).release);
            for i in 0..inst.n_machines() {
                if let Some(c) = inst.cost(i, j).finite() {
                    assert_eq!(exact.cost(i, j).finite().unwrap().to_f64(), *c);
                }
            }
        }
        // The quantized exact instance still factorizes c[i][j] = W_j·s_i,
        // so the combinatorial uniform fast path stays applicable.
        assert!(uniform_factors(&exact).is_some());
        // And costs are within 2^-7 relative of the unquantized builder.
        let raw = p.instance(&reqs, &model).unwrap();
        for j in 0..raw.n_jobs() {
            for i in 0..raw.n_machines() {
                if let (Some(a), Some(b)) = (raw.cost(i, j).finite(), inst.cost(i, j).finite()) {
                    assert!((a - b).abs() / a < 1.0 / 128.0);
                }
            }
        }
    }

    #[test]
    fn request_family_hits_its_load_factor() {
        let model = CostModel::paper_scale();
        for (seed, load) in [(1u64, 0.5f64), (2, 1.0), (3, 2.5)] {
            let plat = PlatformFamily {
                name: "t".into(),
                n_servers: 4,
                n_databanks: 5,
                heterogeneity: 3.0,
            }
            .realize(seed);
            let fam = RequestFamily {
                name: "w".into(),
                n_requests: 12,
                load,
            };
            let reqs = fam.realize(&plat, &model, seed);
            assert_eq!(reqs.len(), 12);
            let total: f64 = reqs
                .iter()
                .map(|r| fastest_scan_seconds(&plat, &model, r).unwrap())
                .sum();
            let span = total / (plat.servers.len() as f64 * load);
            let max_release = reqs.iter().map(|r| r.release).fold(0.0f64, f64::max);
            // Releases were drawn uniformly in [0, 1) then scaled by span.
            assert!(max_release < span);
            assert!(max_release > 0.0);
        }
    }

    #[test]
    fn families_are_deterministic_per_seed() {
        let model = CostModel::paper_scale();
        let fam = PlatformFamily {
            name: "p".into(),
            n_servers: 3,
            n_databanks: 4,
            heterogeneity: 2.0,
        };
        let w = RequestFamily {
            name: "w".into(),
            n_requests: 6,
            load: 1.0,
        };
        let (p1, p2) = (fam.realize(9), fam.realize(9));
        let (r1, r2) = (w.realize(&p1, &model, 5), w.realize(&p2, &model, 5));
        for (a, b) in r1.iter().zip(&r2) {
            assert_eq!(a.release, b.release);
            assert_eq!(a.databank, b.databank);
            assert_eq!(a.n_motifs, b.n_motifs);
        }
        // A different seed produces a different batch.
        let r3 = w.realize(&p1, &model, 6);
        assert!(r1.iter().zip(&r3).any(|(a, b)| a.release != b.release));
    }

    #[test]
    fn fastest_scan_seconds_prefers_fast_holders() {
        let p = PlatformSpec {
            servers: vec![
                ServerSpec {
                    cycle_time: 1.0,
                    databanks: vec![],
                },
                ServerSpec {
                    cycle_time: 2.0,
                    databanks: vec![0],
                },
            ],
            databank_residues: vec![1.0e6],
        };
        let model = CostModel::paper_scale();
        let req = Request {
            databank: 0,
            n_motifs: 10.0,
            release: 0.0,
            weight: 1.0,
        };
        // Only the slow server holds the bank: its time is the answer.
        let t = fastest_scan_seconds(&p, &model, &req).unwrap();
        let expect = 2.0 * 1.0e6 * 10.0 * model.seconds_per_unit;
        assert!((t - expect).abs() < 1e-9);
    }

    #[test]
    fn request_batches_are_sorted_and_deterministic() {
        let p = PlatformSpec::random(3, 4, 2.0, 1);
        let a = random_requests(&p, 10, 100.0, 9);
        let b = random_requests(&p, 10, 100.0, 9);
        assert_eq!(a.len(), 10);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.release, y.release);
            assert_eq!(x.databank, y.databank);
        }
        for w in a.windows(2) {
            assert!(w[0].release <= w[1].release);
        }
    }
}
