//! Heterogeneous databank-server fleets → scheduling instances.
//!
//! This is the bridge from the application model (§2) to the scheduling
//! model (§3): servers with different speeds each hold a subset of the
//! databanks; a comparison request targets one databank and can only run
//! where that databank is replicated; the resulting cost matrix is the
//! *uniform machines with restricted availabilities* structure the paper
//! identifies (a special case of unrelated machines).

use crate::cost_model::CostModel;
use dlflow_core::instance::{Instance, InstanceError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One sequence-comparison server.
#[derive(Clone, Debug)]
pub struct ServerSpec {
    /// Relative cycle time: seconds per work unit (lower = faster).
    pub cycle_time: f64,
    /// Indices (into [`PlatformSpec::databank_residues`]) of locally
    /// replicated databanks.
    pub databanks: Vec<usize>,
}

/// A fleet of servers and the databanks they replicate.
#[derive(Clone, Debug)]
pub struct PlatformSpec {
    /// Servers.
    pub servers: Vec<ServerSpec>,
    /// Size (total residues) of each databank.
    pub databank_residues: Vec<f64>,
}

/// One motif-comparison request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Databank to compare against.
    pub databank: usize,
    /// Number of motifs in the query.
    pub n_motifs: f64,
    /// Release date (seconds).
    pub release: f64,
    /// Priority weight.
    pub weight: f64,
}

impl PlatformSpec {
    /// A deterministic random platform: `n_servers` with cycle times in
    /// `[1, heterogeneity]`, `n_databanks` each replicated on a random
    /// non-empty subset of servers.
    pub fn random(
        n_servers: usize,
        n_databanks: usize,
        heterogeneity: f64,
        seed: u64,
    ) -> PlatformSpec {
        assert!(n_servers > 0 && n_databanks > 0);
        assert!(heterogeneity >= 1.0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut servers: Vec<ServerSpec> = (0..n_servers)
            .map(|_| ServerSpec {
                cycle_time: rng.gen_range(1.0..=heterogeneity),
                databanks: Vec::new(),
            })
            .collect();
        let databank_residues: Vec<f64> = (0..n_databanks)
            .map(|_| rng.gen_range(1.0e5..2.0e7))
            .collect();
        for d in 0..n_databanks {
            // Each databank lands on every server with p = 1/2, but at
            // least one replica is forced.
            let mut any = false;
            for s in servers.iter_mut() {
                if rng.gen_bool(0.5) {
                    s.databanks.push(d);
                    any = true;
                }
            }
            if !any {
                let s = rng.gen_range(0..n_servers);
                servers[s].databanks.push(d);
            }
        }
        PlatformSpec {
            servers,
            databank_residues,
        }
    }

    /// Does server `i` hold databank `d`?
    pub fn holds(&self, server: usize, databank: usize) -> bool {
        self.servers[server].databanks.contains(&databank)
    }

    /// Work volume (residues × motifs) of a request.
    pub fn request_work(&self, req: &Request) -> f64 {
        self.databank_residues[req.databank] * req.n_motifs
    }

    /// Builds the unrelated-machines [`Instance`] for a request batch under
    /// a cost model. `c[i][j] = scan seconds on server i`, infinite where
    /// the databank is absent. The per-invocation overhead is *not*
    /// included: the scheduling model of §3 neglects it, as justified by
    /// the §2 measurements (sequence-partitioning overhead ≈ 1 s ≪ scan
    /// time) — the same simplification the paper makes.
    pub fn instance(
        &self,
        requests: &[Request],
        model: &CostModel,
    ) -> Result<Instance<f64>, InstanceError> {
        let sizes: Vec<f64> = requests
            .iter()
            .map(|r| self.request_work(r) * model.seconds_per_unit)
            .collect();
        let releases: Vec<f64> = requests.iter().map(|r| r.release).collect();
        let weights: Vec<f64> = requests.iter().map(|r| r.weight).collect();
        let cycle: Vec<f64> = self.servers.iter().map(|s| s.cycle_time).collect();
        let avail: Vec<Vec<bool>> = self
            .servers
            .iter()
            .map(|s| {
                requests
                    .iter()
                    .map(|r| s.databanks.contains(&r.databank))
                    .collect()
            })
            .collect();
        Instance::uniform_restricted(&sizes, &releases, &weights, &cycle, &avail)
    }
}

/// A deterministic random request batch against a platform.
pub fn random_requests(platform: &PlatformSpec, n: usize, horizon: f64, seed: u64) -> Vec<Request> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_banks = platform.databank_residues.len();
    let mut reqs: Vec<Request> = (0..n)
        .map(|_| Request {
            databank: rng.gen_range(0..n_banks),
            n_motifs: rng.gen_range(10.0..400.0),
            release: rng.gen_range(0.0..horizon),
            weight: *[1.0, 2.0, 5.0].get(rng.gen_range(0..3usize)).unwrap(),
        })
        .collect();
    reqs.sort_by(|a, b| a.release.partial_cmp(&b.release).unwrap());
    reqs
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlflow_core::instance::Cost;

    #[test]
    fn random_platform_always_places_databanks() {
        for seed in 0..20 {
            let p = PlatformSpec::random(4, 6, 3.0, seed);
            for d in 0..6 {
                assert!(
                    (0..4).any(|s| p.holds(s, d)),
                    "databank {d} unplaced (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn instance_reflects_placement_and_speed() {
        let p = PlatformSpec {
            servers: vec![
                ServerSpec {
                    cycle_time: 1.0,
                    databanks: vec![0],
                },
                ServerSpec {
                    cycle_time: 2.0,
                    databanks: vec![0, 1],
                },
            ],
            databank_residues: vec![1.0e6, 2.0e6],
        };
        let model = CostModel::paper_scale();
        let reqs = vec![
            Request {
                databank: 0,
                n_motifs: 100.0,
                release: 0.0,
                weight: 1.0,
            },
            Request {
                databank: 1,
                n_motifs: 50.0,
                release: 5.0,
                weight: 2.0,
            },
        ];
        let inst = p.instance(&reqs, &model).unwrap();
        assert_eq!(inst.n_jobs(), 2);
        assert_eq!(inst.n_machines(), 2);
        // Request 0 runs on both; request 1 only on server 1.
        assert!(inst.cost(0, 0).is_finite());
        assert!(inst.cost(1, 0).is_finite());
        assert_eq!(inst.cost(0, 1), &Cost::Infinite);
        assert!(inst.cost(1, 1).is_finite());
        // Server 1 is twice as slow on the shared request.
        let c0 = *inst.cost(0, 0).finite().unwrap();
        let c1 = *inst.cost(1, 0).finite().unwrap();
        assert!((c1 / c0 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unplaceable_request_is_rejected() {
        let p = PlatformSpec {
            servers: vec![ServerSpec {
                cycle_time: 1.0,
                databanks: vec![0],
            }],
            databank_residues: vec![1.0e6, 2.0e6],
        };
        let reqs = vec![Request {
            databank: 1,
            n_motifs: 10.0,
            release: 0.0,
            weight: 1.0,
        }];
        assert!(p.instance(&reqs, &CostModel::paper_scale()).is_err());
    }

    #[test]
    fn request_batches_are_sorted_and_deterministic() {
        let p = PlatformSpec::random(3, 4, 2.0, 1);
        let a = random_requests(&p, 10, 100.0, 9);
        let b = random_requests(&p, 10, 100.0, 9);
        assert_eq!(a.len(), 10);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.release, y.release);
            assert_eq!(x.databank, y.databank);
        }
        for w in a.windows(2) {
            assert!(w[0].release <= w[1].release);
        }
    }
}
