//! Protein sequences and FASTA-like serialization.

use crate::alphabet;
use std::fmt;

/// A named protein sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProteinSequence {
    /// Identifier (FASTA header without `>`).
    pub id: String,
    /// Residues, upper-case one-letter codes.
    pub residues: Vec<u8>,
}

impl ProteinSequence {
    /// Builds from an id and residue string; rejects non-residue characters.
    pub fn new(id: impl Into<String>, residues: &str) -> Result<Self, ParseFastaError> {
        let bytes: Vec<u8> = residues.bytes().map(|b| b.to_ascii_uppercase()).collect();
        for (pos, &b) in bytes.iter().enumerate() {
            if !alphabet::is_residue(b) {
                return Err(ParseFastaError::BadResidue { pos, byte: b });
            }
        }
        Ok(ProteinSequence {
            id: id.into(),
            residues: bytes,
        })
    }

    /// Sequence length in residues.
    pub fn len(&self) -> usize {
        self.residues.len()
    }

    /// `true` when the sequence has no residues.
    pub fn is_empty(&self) -> bool {
        self.residues.is_empty()
    }
}

impl fmt::Display for ProteinSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, ">{}", self.id)?;
        for chunk in self.residues.chunks(60) {
            writeln!(
                f,
                "{}",
                std::str::from_utf8(chunk).expect("residues are ASCII")
            )?;
        }
        Ok(())
    }
}

/// FASTA parsing errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseFastaError {
    /// A sequence line appeared before any `>` header.
    MissingHeader,
    /// A non-amino-acid character at byte offset `pos`.
    BadResidue {
        /// Offset within the sequence body.
        pos: usize,
        /// The offending byte.
        byte: u8,
    },
}

impl fmt::Display for ParseFastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseFastaError::MissingHeader => write!(f, "sequence data before first FASTA header"),
            ParseFastaError::BadResidue { pos, byte } => {
                write!(f, "invalid residue {:?} at offset {pos}", *byte as char)
            }
        }
    }
}

impl std::error::Error for ParseFastaError {}

/// Parses a FASTA document into sequences.
///
/// This is deliberately a *real* parser (headers, multi-line bodies,
/// blank-line tolerance): re-parsing the databank is the per-invocation
/// fixed cost that produces the large intercept of Figure 1(b).
pub fn parse_fasta(text: &str) -> Result<Vec<ProteinSequence>, ParseFastaError> {
    let mut out: Vec<ProteinSequence> = Vec::new();
    let mut cur_id: Option<String> = None;
    let mut cur_res: Vec<u8> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(hdr) = line.strip_prefix('>') {
            if let Some(id) = cur_id.take() {
                out.push(ProteinSequence {
                    id,
                    residues: std::mem::take(&mut cur_res),
                });
            }
            cur_id = Some(hdr.trim().to_string());
        } else {
            if cur_id.is_none() {
                return Err(ParseFastaError::MissingHeader);
            }
            for (pos, b) in line.bytes().enumerate() {
                let up = b.to_ascii_uppercase();
                if !alphabet::is_residue(up) {
                    return Err(ParseFastaError::BadResidue { pos, byte: b });
                }
                cur_res.push(up);
            }
        }
    }
    if let Some(id) = cur_id {
        out.push(ProteinSequence {
            id,
            residues: cur_res,
        });
    }
    Ok(out)
}

/// Serializes sequences to a FASTA document.
pub fn to_fasta(seqs: &[ProteinSequence]) -> String {
    let mut s = String::new();
    for seq in seqs {
        s.push_str(&seq.to_string());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        let s = ProteinSequence::new("p1", "acdef").unwrap();
        assert_eq!(s.residues, b"ACDEF");
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert!(matches!(
            ProteinSequence::new("p2", "AC-DE"),
            Err(ParseFastaError::BadResidue { pos: 2, .. })
        ));
    }

    #[test]
    fn fasta_roundtrip() {
        let seqs = vec![
            ProteinSequence::new("alpha", &"ACDEFGHIKLMNPQRSTVWY".repeat(5)).unwrap(),
            ProteinSequence::new("beta desc", "MKV").unwrap(),
        ];
        let text = to_fasta(&seqs);
        let back = parse_fasta(&text).unwrap();
        assert_eq!(back, seqs);
    }

    #[test]
    fn fasta_multiline_and_blank_lines() {
        let text = ">s1\nACD\n\nEFG\n>s2\nMKV\n";
        let seqs = parse_fasta(text).unwrap();
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[0].residues, b"ACDEFG");
        assert_eq!(seqs[1].id, "s2");
    }

    #[test]
    fn fasta_errors() {
        assert_eq!(
            parse_fasta("ACD\n").unwrap_err(),
            ParseFastaError::MissingHeader
        );
        assert!(matches!(
            parse_fasta(">s\nAC1\n").unwrap_err(),
            ParseFastaError::BadResidue { .. }
        ));
    }

    #[test]
    fn empty_document_is_empty() {
        assert!(parse_fasta("").unwrap().is_empty());
        assert!(parse_fasta("\n\n").unwrap().is_empty());
    }
}
