//! Synthetic protein databanks.
//!
//! The paper's experiments use a reference databank of ≈38 000 protein
//! sequences. We synthesize databanks with realistic residue composition
//! ([`crate::alphabet::BACKGROUND_FREQ`]) and a right-skewed length
//! distribution centred near 350 residues (typical of SwissProt), and we
//! provide the same subsetting operations the paper's divisibility study
//! performs (random subsets of 1/20, 2/20, … of the full bank).

use crate::alphabet::{background_cdf, sample_residue};
use crate::sequence::ProteinSequence;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A collection of protein sequences with summary statistics.
#[derive(Clone, Debug)]
pub struct Databank {
    /// The sequences.
    pub sequences: Vec<ProteinSequence>,
}

/// Parameters for synthetic databank generation.
#[derive(Clone, Debug)]
pub struct DatabankSpec {
    /// Number of sequences.
    pub n_sequences: usize,
    /// Mean sequence length (residues).
    pub mean_len: usize,
    /// Minimum sequence length.
    pub min_len: usize,
    /// RNG seed (generation is fully deterministic given the spec).
    pub seed: u64,
}

impl Default for DatabankSpec {
    fn default() -> Self {
        DatabankSpec {
            n_sequences: 1000,
            mean_len: 350,
            min_len: 40,
            seed: 0x5EED,
        }
    }
}

impl Databank {
    /// Generates a synthetic databank.
    ///
    /// Lengths follow a geometric-ish right-skewed law: `min_len +
    /// Exp(mean_len − min_len)` truncated at `6 × mean_len`, which
    /// resembles real protein-length histograms closely enough for the
    /// scan-cost experiments (cost is driven by total residue count).
    pub fn generate(spec: &DatabankSpec) -> Databank {
        let mut rng = SmallRng::seed_from_u64(spec.seed);
        let cdf = background_cdf();
        let scale = spec.mean_len.saturating_sub(spec.min_len).max(1) as f64;
        let mut sequences = Vec::with_capacity(spec.n_sequences);
        for k in 0..spec.n_sequences {
            // Inverse-CDF exponential sample.
            let u: f64 = rng.gen_range(1e-12..1.0);
            let extra = (-u.ln() * scale) as usize;
            let len = (spec.min_len + extra)
                .min(spec.mean_len * 6)
                .max(spec.min_len);
            let residues: Vec<u8> = (0..len)
                .map(|_| sample_residue(&cdf, rng.gen_range(0.0..1.0)))
                .collect();
            sequences.push(ProteinSequence {
                id: format!("SYN{:06}", k),
                residues,
            });
        }
        Databank { sequences }
    }

    /// Number of sequences.
    pub fn n_sequences(&self) -> usize {
        self.sequences.len()
    }

    /// Total residue count — the "size" that drives scan cost.
    pub fn total_residues(&self) -> usize {
        self.sequences.iter().map(|s| s.len()).sum()
    }

    /// A random subset of `k` sequences (without replacement), as in the
    /// paper's sequence-partitioning experiment. Deterministic in `seed`.
    pub fn random_subset(&self, k: usize, seed: u64) -> Databank {
        assert!(k <= self.n_sequences(), "subset larger than databank");
        let mut rng = SmallRng::seed_from_u64(seed);
        // Partial Fisher–Yates.
        let mut idx: Vec<usize> = (0..self.n_sequences()).collect();
        for i in 0..k {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        let sequences = idx[..k]
            .iter()
            .map(|&i| self.sequences[i].clone())
            .collect();
        Databank { sequences }
    }

    /// Splits into `parts` contiguous chunks of near-equal sequence counts
    /// (how a master would hand block ranges to servers).
    pub fn partition(&self, parts: usize) -> Vec<Databank> {
        assert!(parts > 0);
        let n = self.n_sequences();
        let base = n / parts;
        let rem = n % parts;
        let mut out = Vec::with_capacity(parts);
        let mut pos = 0;
        for p in 0..parts {
            let take = base + usize::from(p < rem);
            out.push(Databank {
                sequences: self.sequences[pos..pos + take].to_vec(),
            });
            pos += take;
        }
        out
    }

    /// FASTA serialization (used to make re-parsing a real, measurable cost).
    pub fn to_fasta(&self) -> String {
        crate::sequence::to_fasta(&self.sequences)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> DatabankSpec {
        DatabankSpec {
            n_sequences: 200,
            mean_len: 100,
            min_len: 20,
            seed: 42,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Databank::generate(&small_spec());
        let b = Databank::generate(&small_spec());
        assert_eq!(a.sequences, b.sequences);
        assert_eq!(a.n_sequences(), 200);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Databank::generate(&small_spec());
        let mut spec = small_spec();
        spec.seed = 43;
        let b = Databank::generate(&spec);
        assert_ne!(a.sequences, b.sequences);
    }

    #[test]
    fn lengths_respect_bounds() {
        let spec = small_spec();
        let bank = Databank::generate(&spec);
        for s in &bank.sequences {
            assert!(s.len() >= spec.min_len);
            assert!(s.len() <= spec.mean_len * 6);
        }
        // Mean should be in the right ballpark.
        let mean = bank.total_residues() as f64 / bank.n_sequences() as f64;
        assert!(mean > 50.0 && mean < 200.0, "mean = {mean}");
    }

    #[test]
    fn subset_sizes_and_determinism() {
        let bank = Databank::generate(&small_spec());
        let s1 = bank.random_subset(50, 7);
        let s2 = bank.random_subset(50, 7);
        assert_eq!(s1.sequences, s2.sequences);
        assert_eq!(s1.n_sequences(), 50);
        // No duplicates.
        let mut ids: Vec<&str> = s1.sequences.iter().map(|s| s.id.as_str()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 50);
    }

    #[test]
    fn partition_conserves_sequences() {
        let bank = Databank::generate(&small_spec());
        let parts = bank.partition(7);
        assert_eq!(parts.len(), 7);
        let total: usize = parts.iter().map(|p| p.n_sequences()).sum();
        assert_eq!(total, bank.n_sequences());
        // Near-equal sizes.
        let sizes: Vec<usize> = parts.iter().map(|p| p.n_sequences()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn fasta_roundtrip_via_parser() {
        let bank = Databank::generate(&DatabankSpec {
            n_sequences: 5,
            ..small_spec()
        });
        let text = bank.to_fasta();
        let back = crate::sequence::parse_fasta(&text).unwrap();
        assert_eq!(back, bank.sequences);
    }
}
