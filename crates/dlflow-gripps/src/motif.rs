//! PROSITE-style motifs: syntax, parser, random generation.
//!
//! Supported grammar (a faithful subset of PROSITE patterns):
//!
//! ```text
//! motif    := element ('-' element)*
//! element  := atom repeat?
//! atom     := residue            (e.g.  C)
//!           | 'x'                (any residue)
//!           | '[' residue+ ']'   (one of)
//!           | '{' residue+ '}'   (none of)
//! repeat   := '(' n ')' | '(' n ',' m ')'
//! ```
//!
//! Example: `C-x(2,4)-[ST]-{P}-H` — cysteine, 2–4 arbitrary residues, Ser
//! or Thr, anything but Pro, histidine.

use crate::alphabet::{index_of, AMINO_ACIDS};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A single pattern position class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Atom {
    /// Exactly this residue.
    Exact(u8),
    /// Any residue (`x`).
    Any,
    /// One of the listed residues (`[..]`), as a 20-bit mask.
    OneOf(u32),
    /// None of the listed residues (`{..}`), as a 20-bit mask.
    NoneOf(u32),
}

impl Atom {
    /// Does this class accept the residue?
    #[inline]
    pub fn matches(&self, residue: u8) -> bool {
        match self {
            Atom::Exact(c) => *c == residue,
            Atom::Any => true,
            Atom::OneOf(mask) => index_of(residue).is_some_and(|i| mask & (1 << i) != 0),
            Atom::NoneOf(mask) => index_of(residue).is_some_and(|i| mask & (1 << i) == 0),
        }
    }
}

/// A pattern element: an atom with a repetition range `min..=max`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Element {
    /// Position class.
    pub atom: Atom,
    /// Minimum repetitions.
    pub min: u32,
    /// Maximum repetitions (`min == max` for fixed counts).
    pub max: u32,
}

/// A compiled motif.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Motif {
    /// Ordered elements.
    pub elements: Vec<Element>,
    /// The source text (for display / reporting).
    pub source: String,
}

impl Motif {
    /// Parses PROSITE-like syntax.
    pub fn parse(text: &str) -> Result<Motif, ParseMotifError> {
        let mut elements = Vec::new();
        for (k, part) in text.split('-').enumerate() {
            let part = part.trim();
            if part.is_empty() {
                return Err(ParseMotifError::EmptyElement(k));
            }
            let bytes = part.as_bytes();
            let (atom, consumed) = match bytes[0] {
                b'x' | b'X' => (Atom::Any, 1),
                b'[' => {
                    let close = part
                        .find(']')
                        .ok_or(ParseMotifError::UnterminatedClass(k))?;
                    let mask = class_mask(&bytes[1..close], k)?;
                    (Atom::OneOf(mask), close + 1)
                }
                b'{' => {
                    let close = part
                        .find('}')
                        .ok_or(ParseMotifError::UnterminatedClass(k))?;
                    let mask = class_mask(&bytes[1..close], k)?;
                    (Atom::NoneOf(mask), close + 1)
                }
                c => {
                    let up = c.to_ascii_uppercase();
                    if index_of(up).is_none() {
                        return Err(ParseMotifError::BadResidue(k, c as char));
                    }
                    (Atom::Exact(up), 1)
                }
            };
            let rest = &part[consumed..];
            let (min, max) = if rest.is_empty() {
                (1, 1)
            } else {
                let inner = rest
                    .strip_prefix('(')
                    .and_then(|r| r.strip_suffix(')'))
                    .ok_or(ParseMotifError::BadRepeat(k))?;
                match inner.split_once(',') {
                    Some((a, b)) => {
                        let lo: u32 = a
                            .trim()
                            .parse()
                            .map_err(|_| ParseMotifError::BadRepeat(k))?;
                        let hi: u32 = b
                            .trim()
                            .parse()
                            .map_err(|_| ParseMotifError::BadRepeat(k))?;
                        if lo > hi {
                            return Err(ParseMotifError::BadRepeat(k));
                        }
                        (lo, hi)
                    }
                    None => {
                        let v: u32 = inner
                            .trim()
                            .parse()
                            .map_err(|_| ParseMotifError::BadRepeat(k))?;
                        (v, v)
                    }
                }
            };
            elements.push(Element { atom, min, max });
        }
        if elements.is_empty() {
            return Err(ParseMotifError::Empty);
        }
        Ok(Motif {
            elements,
            source: text.to_string(),
        })
    }

    /// Minimum span (residues) a match can cover.
    pub fn min_span(&self) -> usize {
        self.elements.iter().map(|e| e.min as usize).sum()
    }

    /// Maximum span a match can cover.
    pub fn max_span(&self) -> usize {
        self.elements.iter().map(|e| e.max as usize).sum()
    }

    /// Generates a random motif with `n_elements` positions.
    ///
    /// The element mix (60% exact, 15% any-with-gap, 15% one-of,
    /// 10% none-of) gives hit rates comparable to curated PROSITE entries
    /// on background-composition sequences: rare but nonzero.
    pub fn random(n_elements: usize, seed: u64) -> Motif {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut parts: Vec<String> = Vec::with_capacity(n_elements);
        for _ in 0..n_elements.max(1) {
            let roll: f64 = rng.gen_range(0.0..1.0);
            if roll < 0.60 {
                let aa = AMINO_ACIDS[rng.gen_range(0..20usize)] as char;
                parts.push(aa.to_string());
            } else if roll < 0.75 {
                let lo = rng.gen_range(1..3u32);
                let hi = lo + rng.gen_range(0..3u32);
                if lo == hi {
                    parts.push(format!("x({lo})"));
                } else {
                    parts.push(format!("x({lo},{hi})"));
                }
            } else if roll < 0.90 {
                let k = rng.gen_range(2..5usize);
                let set: String = (0..k)
                    .map(|_| AMINO_ACIDS[rng.gen_range(0..20usize)] as char)
                    .collect();
                parts.push(format!("[{set}]"));
            } else {
                let aa = AMINO_ACIDS[rng.gen_range(0..20usize)] as char;
                parts.push(format!("{{{aa}}}"));
            }
        }
        let text = parts.join("-");
        Motif::parse(&text).expect("generated motif is syntactically valid")
    }

    /// Generates a deterministic motif set, as the paper's ≈300-motif input.
    pub fn random_set(count: usize, n_elements: usize, seed: u64) -> Vec<Motif> {
        (0..count)
            .map(|k| Motif::random(n_elements, seed.wrapping_add(k as u64 * 0x9E37)))
            .collect()
    }
}

fn class_mask(residues: &[u8], element: usize) -> Result<u32, ParseMotifError> {
    if residues.is_empty() {
        return Err(ParseMotifError::EmptyClass(element));
    }
    let mut mask = 0u32;
    for &r in residues {
        let idx = index_of(r.to_ascii_uppercase())
            .ok_or(ParseMotifError::BadResidue(element, r as char))?;
        mask |= 1 << idx;
    }
    Ok(mask)
}

impl fmt::Display for Motif {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.source)
    }
}

/// Motif syntax errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseMotifError {
    /// No elements at all.
    Empty,
    /// Element `k` was empty (`--`).
    EmptyElement(usize),
    /// Element `k` used a character outside the amino-acid alphabet.
    BadResidue(usize, char),
    /// `[` or `{` without its closing bracket in element `k`.
    UnterminatedClass(usize),
    /// `[]` or `{}` in element `k`.
    EmptyClass(usize),
    /// Malformed repetition suffix in element `k`.
    BadRepeat(usize),
}

impl fmt::Display for ParseMotifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseMotifError::Empty => write!(f, "empty motif"),
            ParseMotifError::EmptyElement(k) => write!(f, "element {k} is empty"),
            ParseMotifError::BadResidue(k, c) => write!(f, "element {k}: invalid residue {c:?}"),
            ParseMotifError::UnterminatedClass(k) => write!(f, "element {k}: unterminated class"),
            ParseMotifError::EmptyClass(k) => write!(f, "element {k}: empty class"),
            ParseMotifError::BadRepeat(k) => write!(f, "element {k}: malformed repetition"),
        }
    }
}

impl std::error::Error for ParseMotifError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let m = Motif::parse("A-C-D").unwrap();
        assert_eq!(m.elements.len(), 3);
        assert_eq!(
            m.elements[0],
            Element {
                atom: Atom::Exact(b'A'),
                min: 1,
                max: 1
            }
        );
        assert_eq!(m.min_span(), 3);
        assert_eq!(m.max_span(), 3);
    }

    #[test]
    fn parse_full_grammar() {
        let m = Motif::parse("C-x(2,4)-[ST]-{P}-H").unwrap();
        assert_eq!(m.elements.len(), 5);
        assert_eq!(
            m.elements[1],
            Element {
                atom: Atom::Any,
                min: 2,
                max: 4
            }
        );
        assert!(matches!(m.elements[2].atom, Atom::OneOf(_)));
        assert!(matches!(m.elements[3].atom, Atom::NoneOf(_)));
        assert_eq!(m.min_span(), 6);
        assert_eq!(m.max_span(), 8);
        assert!(m.elements[2].atom.matches(b'S'));
        assert!(m.elements[2].atom.matches(b'T'));
        assert!(!m.elements[2].atom.matches(b'A'));
        assert!(m.elements[3].atom.matches(b'A'));
        assert!(!m.elements[3].atom.matches(b'P'));
    }

    #[test]
    fn parse_fixed_repeat() {
        let m = Motif::parse("x(3)").unwrap();
        assert_eq!(
            m.elements[0],
            Element {
                atom: Atom::Any,
                min: 3,
                max: 3
            }
        );
    }

    #[test]
    fn case_insensitive() {
        let m = Motif::parse("a-x-[st]").unwrap();
        assert!(m.elements[0].atom.matches(b'A'));
        assert!(m.elements[2].atom.matches(b'S'));
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            Motif::parse("A--C"),
            Err(ParseMotifError::EmptyElement(1))
        ));
        assert!(matches!(
            Motif::parse("Z"),
            Err(ParseMotifError::BadResidue(0, 'Z'))
        ));
        assert!(matches!(
            Motif::parse("[ST"),
            Err(ParseMotifError::UnterminatedClass(0))
        ));
        assert!(matches!(
            Motif::parse("[]"),
            Err(ParseMotifError::EmptyClass(0))
        ));
        assert!(matches!(
            Motif::parse("A(2,1)"),
            Err(ParseMotifError::BadRepeat(0))
        ));
        assert!(matches!(
            Motif::parse("A(x)"),
            Err(ParseMotifError::BadRepeat(0))
        ));
    }

    #[test]
    fn atom_matching_rules() {
        assert!(Atom::Any.matches(b'W'));
        assert!(Atom::Exact(b'C').matches(b'C'));
        assert!(!Atom::Exact(b'C').matches(b'G'));
        // Non-residue never matches classes.
        assert!(!Atom::OneOf(u32::MAX).matches(b'-'));
        assert!(!Atom::NoneOf(0).matches(b'1'));
    }

    #[test]
    fn random_motifs_parse_and_vary() {
        let set = Motif::random_set(20, 6, 99);
        assert_eq!(set.len(), 20);
        for m in &set {
            assert!(!m.elements.is_empty());
            // Round-trips through its own source text.
            assert_eq!(Motif::parse(&m.source).unwrap(), *m);
        }
        assert_ne!(set[0].source, set[1].source);
    }

    #[test]
    fn random_is_deterministic() {
        assert_eq!(Motif::random(5, 7).source, Motif::random(5, 7).source);
    }
}
