//! Integration coverage for the residue alphabet and cost-model fitting
//! helpers a workload generator composes directly.

use dlflow_gripps::alphabet::{background_cdf, index_of, is_residue, sample_residue};
use dlflow_gripps::CostModel;

#[test]
fn alphabet_classifies_and_indexes_residues() {
    assert!(is_residue(b'A'));
    assert!(!is_residue(b'B')); // ambiguity codes are not residues
    let i = index_of(b'A').unwrap();
    assert!(i < 20);
    assert_eq!(index_of(b'Z'), None);
}

#[test]
fn background_sampling_stays_in_the_alphabet() {
    let cdf = background_cdf();
    assert!((cdf[19] - 1.0).abs() < 1e-9); // CDF ends at 1
    for k in 0..100 {
        let u = k as f64 / 100.0;
        let r = sample_residue(&cdf, u);
        assert!(is_residue(r));
    }
    // The extremes map to the first and last residue of the table.
    assert!(index_of(sample_residue(&cdf, 0.0)).is_some());
    assert!(index_of(sample_residue(&cdf, 0.9999999)).is_some());
}

#[test]
fn fixed_bank_fit_recovers_a_linear_series() {
    // seconds = 0.5 · work + 2.0, bank size held fixed.
    let samples: Vec<(f64, f64)> = (0..6).map(|w| (w as f64, 0.5 * w as f64 + 2.0)).collect();
    let (slope, intercept, r2) = CostModel::fit_fixed_bank(&samples);
    assert!((slope - 0.5).abs() < 1e-9);
    assert!((intercept - 2.0).abs() < 1e-9);
    assert!((r2 - 1.0).abs() < 1e-9);
}
