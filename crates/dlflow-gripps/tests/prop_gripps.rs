//! Property-based tests of the GriPPS application model: the scanner
//! against a naive reference matcher, parser round-trips, and the
//! divisibility property the paper's §2 establishes.

use dlflow_gripps::databank::{Databank, DatabankSpec};
use dlflow_gripps::motif::{Atom, Motif};
use dlflow_gripps::scan::{scan_databank, scan_sequence};
use dlflow_gripps::sequence::{parse_fasta, to_fasta, ProteinSequence};
use proptest::prelude::*;

const AA: &[u8] = b"ACDEFGHIKLMNPQRSTVWY";

fn arb_protein(max_len: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..20, 0..max_len)
        .prop_map(|v| v.into_iter().map(|i| AA[i] as char).collect())
}

/// Reference matcher: exhaustive recursion with *all* expansion orders,
/// returning whether any match exists at `pos` (ignores shortest-match
/// tie-breaking, which only affects reported end offsets).
fn reference_match_at(seq: &[u8], pos: usize, motif: &Motif) -> bool {
    fn rec(seq: &[u8], motif: &Motif, elem: usize, off: usize) -> bool {
        if elem == motif.elements.len() {
            return true;
        }
        let e = &motif.elements[elem];
        for reps in e.min..=e.max {
            let reps = reps as usize;
            if off + reps > seq.len() {
                break;
            }
            if (0..reps).all(|k| e.atom.matches(seq[off + k]))
                && rec(seq, motif, elem + 1, off + reps)
            {
                return true;
            }
            // Keep trying longer expansions even if this one failed the
            // class check only at the last residue? No: if residue k
            // fails, longer reps also fail (prefix includes it).
            if !(0..reps).all(|k| e.atom.matches(seq[off + k])) {
                break;
            }
        }
        // reps = e.min..: handle min = 0 case (reps loop starts at min).
        false
    }
    rec(seq, motif, 0, pos)
}

fn arb_motif() -> impl Strategy<Value = Motif> {
    (1usize..6, any::<u64>()).prop_map(|(n, seed)| Motif::random(n, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scanner_agrees_with_reference(seq_s in arb_protein(60), motif in arb_motif()) {
        let seq = ProteinSequence::new("p", &seq_s).unwrap();
        let (matches, _) = scan_sequence(&seq, &motif, 0, 0);
        let anchors: Vec<usize> = matches.iter().map(|m| m.start).collect();
        let min_span = motif.min_span();
        if seq.len() >= min_span {
            for pos in 0..=(seq.len() - min_span) {
                let expect = reference_match_at(&seq.residues, pos, &motif);
                let got = anchors.contains(&pos);
                prop_assert_eq!(got, expect, "pos {} motif {}", pos, motif.source);
            }
        } else {
            prop_assert!(anchors.is_empty());
        }
    }

    #[test]
    fn match_spans_are_within_bounds(seq_s in arb_protein(80), motif in arb_motif()) {
        let seq = ProteinSequence::new("p", &seq_s).unwrap();
        let (matches, _) = scan_sequence(&seq, &motif, 0, 0);
        for m in matches {
            prop_assert!(m.end <= seq.len());
            prop_assert!(m.end - m.start >= motif.min_span());
            prop_assert!(m.end - m.start <= motif.max_span());
        }
    }

    #[test]
    fn fasta_roundtrip_arbitrary(seqs in proptest::collection::vec(arb_protein(50), 1..6)) {
        let bank: Vec<ProteinSequence> = seqs
            .iter()
            .enumerate()
            .map(|(i, s)| ProteinSequence::new(format!("id{i}"), s).unwrap())
            .collect();
        let text = to_fasta(&bank);
        let back = parse_fasta(&text).unwrap();
        prop_assert_eq!(back, bank);
    }

    #[test]
    fn random_motifs_always_roundtrip(n in 1usize..8, seed in any::<u64>()) {
        let m = Motif::random(n, seed);
        let re = Motif::parse(&m.source).unwrap();
        prop_assert_eq!(re, m);
    }

    #[test]
    fn atom_negation_is_complement_on_residues(idx in 0usize..20, mask in any::<u32>()) {
        let residue = AA[idx];
        let mask = mask & ((1 << 20) - 1);
        let one = Atom::OneOf(mask).matches(residue);
        let none = Atom::NoneOf(mask).matches(residue);
        prop_assert_ne!(one, none);
    }

    #[test]
    fn work_units_additive_under_partition(parts in 2usize..6) {
        let bank = Databank::generate(&DatabankSpec { n_sequences: 60, mean_len: 60, min_len: 20, seed: 5 });
        let motifs = vec![Motif::parse("A-x-C").unwrap()];
        let full = scan_databank(&bank, &motifs);
        let split = bank.partition(parts);
        let sum: u64 = split.iter().map(|p| scan_databank(p, &motifs).work_units).sum();
        prop_assert_eq!(sum, full.work_units);
        // Matches are also conserved (partition is by whole sequences).
        let msum: usize = split.iter().map(|p| scan_databank(p, &motifs).matches.len()).sum();
        prop_assert_eq!(msum, full.matches.len());
    }
}
