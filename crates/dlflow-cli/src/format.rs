//! Parser for the `.dlf` instance file format.
//!
//! The format itself — grammar, number syntax, availability markers,
//! semantics — is documented in `docs/FORMATS.md`, side by side with the
//! campaign config format. In one line: `job <release> <weight> [name]`
//! per job, then `machine <c1> … <cn>` per machine with `inf` marking an
//! absent databank; numbers parse as exact rationals.

use dlflow_core::instance::{Cost, Instance, Job};
use dlflow_num::Rat;

/// Parse error with 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line where parsing failed (0 = structural error).
    pub line: usize,
    /// Message.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, msg: impl Into<String>) -> ParseError {
    ParseError {
        line,
        msg: msg.into(),
    }
}

/// Parses one numeric token as an exact rational (`"3/2"`, `"0.25"`, `"7"`).
pub fn parse_rat(tok: &str, line: usize) -> Result<Rat, ParseError> {
    if let Ok(r) = Rat::from_str_ratio(tok) {
        return Ok(r);
    }
    // Decimal form a.b → a + b/10^k.
    if let Some((int, frac)) = tok.split_once('.') {
        let sign = if int.starts_with('-') { -1i64 } else { 1 };
        let whole =
            Rat::from_str_ratio(int).map_err(|_| err(line, format!("bad number {tok:?}")))?;
        if frac.is_empty() || !frac.bytes().all(|b| b.is_ascii_digit()) {
            return Err(err(line, format!("bad number {tok:?}")));
        }
        let num: i64 = frac
            .parse()
            .map_err(|_| err(line, format!("bad number {tok:?}")))?;
        let den = 10i64
            .checked_pow(frac.len() as u32)
            .ok_or_else(|| err(line, format!("too many decimals in {tok:?}")))?;
        let frac_part = Rat::from_ratio(sign * num, den);
        return Ok(whole + frac_part);
    }
    Err(err(line, format!("bad number {tok:?}")))
}

/// Parses a cost token (`parse_rat` or `inf`/`-`/`x` for unavailable).
pub fn parse_cost(tok: &str, line: usize) -> Result<Cost<Rat>, ParseError> {
    match tok {
        "inf" | "INF" | "-" | "x" | "X" => Ok(Cost::Infinite),
        _ => Ok(Cost::Finite(parse_rat(tok, line)?)),
    }
}

/// Parses a full `.dlf` document into an exact instance.
pub fn parse_instance(text: &str) -> Result<Instance<Rat>, ParseError> {
    let mut jobs: Vec<Job<Rat>> = Vec::new();
    let mut machines: Vec<(usize, Vec<Cost<Rat>>)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split_whitespace();
        match toks.next() {
            Some("job") => {
                let release = parse_rat(
                    toks.next()
                        .ok_or_else(|| err(lineno, "job: missing release"))?,
                    lineno,
                )?;
                let weight = parse_rat(
                    toks.next()
                        .ok_or_else(|| err(lineno, "job: missing weight"))?,
                    lineno,
                )?;
                let name = toks
                    .next()
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("J{}", jobs.len() + 1));
                if toks.next().is_some() {
                    return Err(err(lineno, "job: trailing tokens"));
                }
                jobs.push(Job {
                    release,
                    weight,
                    name,
                });
            }
            Some("machine") => {
                let costs: Result<Vec<_>, _> = toks.map(|t| parse_cost(t, lineno)).collect();
                machines.push((lineno, costs?));
            }
            Some(other) => return Err(err(lineno, format!("unknown directive {other:?}"))),
            None => unreachable!("empty line filtered"),
        }
    }

    if jobs.is_empty() {
        return Err(err(0, "no `job` lines"));
    }
    let n = jobs.len();
    let mut rows = Vec::with_capacity(machines.len());
    for (lineno, row) in machines {
        if row.len() != n {
            return Err(err(
                lineno,
                format!(
                    "machine has {} costs, expected {n} (one per job)",
                    row.len()
                ),
            ));
        }
        rows.push(row);
    }
    Instance::new(jobs, rows).map_err(|e| err(0, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    const SAMPLE: &str = "\
# two databank servers, two requests
job 0 1 q1
job 1 2 q2
machine 4 2
machine 8 inf   # second databank absent here
";

    #[test]
    fn parses_sample() {
        let inst = parse_instance(SAMPLE).unwrap();
        assert_eq!(inst.n_jobs(), 2);
        assert_eq!(inst.n_machines(), 2);
        assert_eq!(inst.job(0).name, "q1");
        assert_eq!(inst.job(1).weight, Rat::from_i64(2));
        assert_eq!(inst.cost(0, 1).finite().unwrap(), &Rat::from_i64(2));
        assert!(!inst.cost(1, 1).is_finite());
    }

    #[test]
    fn rational_and_decimal_numbers() {
        assert_eq!(parse_rat("3/2", 1).unwrap(), Rat::from_ratio(3, 2));
        assert_eq!(parse_rat("0.25", 1).unwrap(), Rat::from_ratio(1, 4));
        assert_eq!(parse_rat("7", 1).unwrap(), Rat::from_i64(7));
        assert_eq!(parse_rat("-1.5", 1).unwrap(), Rat::from_ratio(-3, 2));
        assert!(parse_rat("abc", 1).is_err());
        assert!(parse_rat("1.x", 1).is_err());
    }

    #[test]
    fn error_reporting_with_line_numbers() {
        let e = parse_instance("job 0 1\nmachine 4 2\n").unwrap_err();
        assert_eq!(e.line, 2); // machine row length mismatch
        let e = parse_instance("frob 1 2\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.msg.contains("frob"));
        let e = parse_instance("machine 1\n").unwrap_err();
        assert!(e.msg.contains("no `job`"));
    }

    #[test]
    fn validation_errors_surface() {
        // Unplaceable job.
        let e = parse_instance("job 0 1\nmachine inf\n").unwrap_err();
        assert!(e.msg.contains("no machine"), "{}", e.msg);
    }

    #[test]
    fn whole_pipeline_on_parsed_instance() {
        let inst = parse_instance(SAMPLE).unwrap();
        let out = dlflow_core::maxflow::min_max_weighted_flow_divisible(&inst);
        dlflow_core::validate::validate(&inst, &out.schedule).unwrap();
        assert!(out.optimum.is_positive());
    }
}
