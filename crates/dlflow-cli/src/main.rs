//! `dlflow` — command-line front end for the scheduling library.
//!
//! ```text
//! dlflow makespan  <instance.dlf>            Theorem 1: optimal divisible makespan
//! dlflow maxflow   <instance.dlf> [options]  Theorem 2 / §4.4: optimal max weighted flow
//!     --preemptive     preemption without divisibility (§4.4)
//!     --stretch        re-weight jobs by 1/W_j (max stretch)
//! dlflow deadline  <instance.dlf> <d1> <d2> … [--preemptive]
//!                                            Lemma 1: deadline feasibility
//! dlflow milestones <instance.dlf>           list the Theorem-2 milestones
//! dlflow campaign  <config> [options]        §6 scheduler tournament
//!     --out <prefix>   write <prefix>.json + <prefix>.md
//!     --serial         single-threaded (determinism oracle)
//! dlflow simulate  <instance.dlf|trace.dlt> [options]
//!                                            replay one scheduler (incremental engine)
//!     --scheduler <spec>  kind[:key=val,…], e.g. swrpt or ola:throttle=30
//!     --json              machine-readable, byte-stable report
//!     --faults <spec>     inject seeded failures: mtbf=<s>,mttr=<s>[,seed=<n>][,until=<t>]
//!     --snapshot-at <n>   snapshot the run at event n (requires --snapshot-out)
//!     --snapshot-out <p>  where to write the snapshot
//!     --resume <p>        resume a previous snapshot instead of starting at t=0
//!     --shards <k>        partition the machines into k contiguous clusters,
//!                         each with its own engine + scheduler instance
//! Common options: --gantt [width]            draw an ASCII Gantt chart
//! ```
//!
//! Instance files use the `.dlf` format, open-arrival traces the `.dlt`
//! format, and campaign files the campaign config format, all documented
//! in `docs/FORMATS.md` (and summarized in `dlflow_cli::format` /
//! `dlflow_sim::campaign` / `dlflow_sim::workload`).

use dlflow_cli::format;

use dlflow_core::deadline::{deadline_feasible_divisible, deadline_feasible_preemptive};
use dlflow_core::gantt::render_gantt;
use dlflow_core::instance::Instance;
use dlflow_core::makespan::min_makespan;
use dlflow_core::maxflow::{min_max_weighted_flow_divisible, min_max_weighted_flow_preemptive};
use dlflow_core::milestones::{milestone_bound, milestones};
use dlflow_core::schedule::Schedule;
use dlflow_core::validate::validate;
use dlflow_num::Rat;
use std::process::ExitCode;

const USAGE: &str = "\
usage:
  dlflow makespan   <instance.dlf> [--gantt [width]]
  dlflow maxflow    <instance.dlf> [--preemptive] [--stretch] [--gantt [width]]
  dlflow deadline   <instance.dlf> <d1> <d2> ... [--preemptive] [--gantt [width]]
  dlflow milestones <instance.dlf>
  dlflow campaign   <config> [--out <prefix>] [--serial]
  dlflow simulate   <instance.dlf|trace.dlt> [--scheduler <spec>] [--json]
                    [--faults mtbf=<s>,mttr=<s>[,seed=<n>][,until=<t>]]
                    [--snapshot-at <n> --snapshot-out <path>] [--resume <path>]
                    [--shards <k>]

instance format (.dlf):
  job <release> <weight> [name]        one line per job
  machine <c1> <c2> ... <cn>           one cost per job; 'inf' = unavailable
  numbers: integers, decimals, or exact rationals like 3/2

trace format (.dlt):
  machines <ct1> <ct2> ... <ctm>       cycle time per machine
  arrival <release> <size> <weight> <mask>   mask: 0/1 per machine, or '*'
  fail <time> <machine>                machine goes down (in-flight work is lost)
  recover <time> <machine>             machine comes back up

scheduler specs: mct fifo srpt swrpt rr wage edf[:target=k]
  ola[:throttle=s,bisect=n] olalite[:alpha=a]   (default: swrpt)

all formats are documented in docs/FORMATS.md";

struct Opts {
    preemptive: bool,
    stretch: bool,
    gantt: Option<usize>,
    out: Option<String>,
    serial: bool,
    json: bool,
    scheduler: Option<String>,
    faults: Option<String>,
    snapshot_at: Option<usize>,
    snapshot_out: Option<String>,
    resume: Option<String>,
    shards: usize,
    positional: Vec<String>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        preemptive: false,
        stretch: false,
        gantt: None,
        out: None,
        serial: false,
        json: false,
        scheduler: None,
        faults: None,
        snapshot_at: None,
        snapshot_out: None,
        resume: None,
        shards: 0,
        positional: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--preemptive" => o.preemptive = true,
            "--stretch" => o.stretch = true,
            "--serial" => o.serial = true,
            "--json" => o.json = true,
            "--out" => {
                let Some(prefix) = args.get(i + 1) else {
                    return Err("--out expects an output prefix".into());
                };
                o.out = Some(prefix.clone());
                i += 1;
            }
            "--scheduler" => {
                let Some(spec) = args.get(i + 1) else {
                    return Err("--scheduler expects a spec like swrpt or ola:throttle=30".into());
                };
                o.scheduler = Some(spec.clone());
                i += 1;
            }
            "--faults" => {
                let Some(spec) = args.get(i + 1) else {
                    return Err("--faults expects mtbf=<s>,mttr=<s>[,seed=<n>][,until=<t>]".into());
                };
                o.faults = Some(spec.clone());
                i += 1;
            }
            "--snapshot-at" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) else {
                    return Err("--snapshot-at expects an event count".into());
                };
                o.snapshot_at = Some(n);
                i += 1;
            }
            "--snapshot-out" => {
                let Some(path) = args.get(i + 1) else {
                    return Err("--snapshot-out expects a file path".into());
                };
                o.snapshot_out = Some(path.clone());
                i += 1;
            }
            "--resume" => {
                let Some(path) = args.get(i + 1) else {
                    return Err("--resume expects a snapshot file path".into());
                };
                o.resume = Some(path.clone());
                i += 1;
            }
            "--shards" => {
                let Some(k) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) else {
                    return Err("--shards expects a shard count".into());
                };
                if k == 0 {
                    return Err("--shards: the shard count must be at least 1".into());
                }
                o.shards = k;
                i += 1;
            }
            "--gantt" => {
                o.gantt = Some(60);
                if let Some(w) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                    o.gantt = Some(w);
                    i += 1;
                }
            }
            flag if flag.starts_with("--") => return Err(format!("unknown option {flag}")),
            pos => o.positional.push(pos.to_string()),
        }
        i += 1;
    }
    Ok(o)
}

/// Parses a `--faults` spec: `mtbf=<s>,mttr=<s>[,seed=<n>][,until=<t>]`.
fn parse_faults(spec: &str) -> Result<dlflow_sim::service::FaultInjection, String> {
    let mut mtbf = None;
    let mut mttr = None;
    let mut seed = 0xFA017u64;
    let mut until = None;
    for part in spec.split(',') {
        let Some((k, v)) = part.split_once('=') else {
            return Err(format!("--faults: expected key=value, got {part:?}"));
        };
        match k {
            "mtbf" => {
                mtbf = Some(
                    v.parse::<f64>()
                        .map_err(|e| format!("--faults mtbf: {e}"))?,
                )
            }
            "mttr" => {
                mttr = Some(
                    v.parse::<f64>()
                        .map_err(|e| format!("--faults mttr: {e}"))?,
                )
            }
            "seed" => {
                seed = v
                    .parse::<u64>()
                    .map_err(|e| format!("--faults seed: {e}"))?
            }
            "until" => {
                until = Some(
                    v.parse::<f64>()
                        .map_err(|e| format!("--faults until: {e}"))?,
                )
            }
            other => return Err(format!("--faults: unknown key {other:?}")),
        }
    }
    let mtbf = mtbf.ok_or("--faults needs mtbf=<secs>")?;
    let mttr = mttr.ok_or("--faults needs mttr=<secs>")?;
    if !(mtbf > 0.0 && mtbf.is_finite() && mttr > 0.0 && mttr.is_finite()) {
        return Err("--faults: mtbf and mttr must be positive and finite".into());
    }
    if let Some(u) = until {
        if !(u > 0.0 && u.is_finite()) {
            return Err("--faults: until must be positive and finite".into());
        }
    }
    Ok(dlflow_sim::service::FaultInjection {
        mtbf,
        mttr,
        seed,
        until,
    })
}

fn load(path: &str) -> Result<Instance<Rat>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    format::parse_instance(&text).map_err(|e| format!("{path}: {e}"))
}

fn show_schedule(inst: &Instance<Rat>, sched: &Schedule<Rat>, gantt: Option<usize>) {
    print!("{sched}");
    if let Some(w) = gantt {
        print!("{}", render_gantt(sched, w));
    }
    let _ = inst;
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return Err(USAGE.to_string());
    };
    let opts = parse_opts(&args[1..])?;

    match cmd.as_str() {
        "makespan" => {
            let [path] = &opts.positional[..] else {
                return Err("makespan: expected exactly one instance file".into());
            };
            let inst = load(path)?;
            let out = min_makespan(&inst);
            validate(&inst, &out.schedule).map_err(|e| e.to_string())?;
            println!(
                "optimal makespan: {} (≈ {:.6})",
                out.makespan,
                out.makespan.to_f64()
            );
            show_schedule(&inst, &out.schedule, opts.gantt);
        }
        "maxflow" => {
            let [path] = &opts.positional[..] else {
                return Err("maxflow: expected exactly one instance file".into());
            };
            let mut inst = load(path)?;
            if opts.stretch {
                inst = inst.with_stretch_weights();
            }
            let out = if opts.preemptive {
                min_max_weighted_flow_preemptive(&inst)
            } else {
                min_max_weighted_flow_divisible(&inst)
            };
            validate(&inst, &out.schedule).map_err(|e| e.to_string())?;
            let label = if opts.stretch {
                "max stretch"
            } else {
                "max weighted flow"
            };
            let model = if opts.preemptive {
                "preemptive (§4.4)"
            } else {
                "divisible (Theorem 2)"
            };
            println!(
                "optimal {label} [{model}]: {} (≈ {:.6})",
                out.optimum,
                out.optimum.to_f64()
            );
            println!(
                "milestones: {}, feasibility probes: {} ({} warm-started, {} cold)",
                out.stats.n_milestones,
                out.stats.n_probes,
                out.stats.n_warm_probes,
                out.stats.n_cold_probes
            );
            show_schedule(&inst, &out.schedule, opts.gantt);
        }
        "deadline" => {
            if opts.positional.len() < 2 {
                return Err("deadline: expected an instance file and one deadline per job".into());
            }
            let inst = load(&opts.positional[0])?;
            let deadlines: Result<Vec<Rat>, _> = opts.positional[1..]
                .iter()
                .map(|t| format::parse_rat(t, 0).map_err(|e| e.to_string()))
                .collect();
            let deadlines = deadlines?;
            if deadlines.len() != inst.n_jobs() {
                return Err(format!(
                    "deadline: got {} deadlines for {} jobs",
                    deadlines.len(),
                    inst.n_jobs()
                ));
            }
            let result = if opts.preemptive {
                deadline_feasible_preemptive(&inst, &deadlines)
            } else {
                deadline_feasible_divisible(&inst, &deadlines)
            };
            match result {
                Some(sched) => {
                    validate(&inst, &sched).map_err(|e| e.to_string())?;
                    println!("FEASIBLE");
                    show_schedule(&inst, &sched, opts.gantt);
                }
                None => {
                    println!("INFEASIBLE");
                    return Err("no schedule meets the deadline windows".into());
                }
            }
        }
        "milestones" => {
            let [path] = &opts.positional[..] else {
                return Err("milestones: expected exactly one instance file".into());
            };
            let inst = load(path)?;
            let ms = milestones(&inst);
            println!(
                "{} distinct milestones (bound n²−n = {}):",
                ms.len(),
                milestone_bound(inst.n_jobs())
            );
            for f in ms {
                println!("  F = {f}");
            }
        }
        "campaign" => {
            let [path] = &opts.positional[..] else {
                return Err("campaign: expected exactly one config file".into());
            };
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let cfg =
                dlflow_sim::campaign::parse_campaign(&text).map_err(|e| format!("{path}: {e}"))?;
            let report = if opts.serial {
                dlflow_sim::campaign::run_campaign_serial(&cfg)
            } else {
                dlflow_sim::campaign::run_campaign(&cfg)
            }?;
            print!("{}", report.to_markdown());
            if let Some(prefix) = &opts.out {
                let json = format!("{prefix}.json");
                let md = format!("{prefix}.md");
                std::fs::write(&json, report.to_json())
                    .map_err(|e| format!("cannot write {json}: {e}"))?;
                std::fs::write(&md, report.to_markdown())
                    .map_err(|e| format!("cannot write {md}: {e}"))?;
                println!("\nwrote {json} and {md}");
            }
        }
        "simulate" => {
            let [path] = &opts.positional[..] else {
                return Err(
                    "simulate: expected exactly one instance (.dlf) or trace (.dlt) file".into(),
                );
            };
            let spec_text = opts.scheduler.as_deref().unwrap_or("swrpt");
            let spec = dlflow_sim::campaign::SchedulerSpec::parse_compact(spec_text)
                .map_err(|e| format!("--scheduler {spec_text}: {e}"))?;
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            // `.dlt` files are open-arrival traces; everything else is
            // parsed as a closed `.dlf` instance.
            let input = if path.ends_with(".dlt") {
                let trace = dlflow_sim::workload::Trace::parse_dlt(&text)
                    .map_err(|e| format!("{path}: {e}"))?;
                dlflow_sim::service::SimInput::Open(trace)
            } else {
                let inst = format::parse_instance(&text).map_err(|e| format!("{path}: {e}"))?;
                dlflow_sim::service::SimInput::Closed(inst.map_scalar(|r| r.to_f64()))
            };
            if opts.snapshot_at.is_some() != opts.snapshot_out.is_some() {
                return Err("--snapshot-at and --snapshot-out must be given together".into());
            }
            let sim_opts = dlflow_sim::service::SimOptions {
                faults: opts.faults.as_deref().map(parse_faults).transpose()?,
                snapshot_at: opts.snapshot_at,
                resume: opts
                    .resume
                    .as_deref()
                    .map(|p| {
                        std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))
                    })
                    .transpose()?,
                shards: opts.shards,
            };
            let (report, snapshot) =
                dlflow_sim::service::run_simulation_with(&input, &spec, &sim_opts)?;
            if let Some(text) = snapshot {
                let path = opts.snapshot_out.as_deref().expect("checked above");
                std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!("wrote snapshot {path}");
            }
            if opts.json {
                print!("{}", report.to_json());
            } else {
                print!("{}", report.to_text());
            }
        }
        "help" | "--help" | "-h" => println!("{USAGE}"),
        other => return Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
