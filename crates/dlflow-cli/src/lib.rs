//! # dlflow-cli — the `dlflow` command-line front end
//!
//! One binary, six subcommands, mapping one-to-one onto the library's
//! entry points:
//!
//! | subcommand | library entry point | paper artefact |
//! |---|---|---|
//! | `makespan` | `dlflow_core::makespan::min_makespan` | Theorem 1 |
//! | `maxflow` (`--preemptive`, `--stretch`) | `dlflow_core::maxflow` | Theorem 2 / §4.4 |
//! | `deadline` | `dlflow_core::deadline` | Lemma 1 |
//! | `milestones` | `dlflow_core::milestones` | the Theorem-2 breakpoints |
//! | `campaign` (`--out`, `--serial`) | `dlflow_sim::campaign` | the §6 tournament |
//! | `simulate` (`--scheduler`, `--json`) | `dlflow_sim::service` | the §5 online model, streamed |
//!
//! Instances are read from `.dlf` text files (parsed by [`mod@format`]
//! into exact-rational `Instance<Rat>` values), open-arrival traces from
//! `.dlt` files (replayed through the incremental engine with memory
//! bound by the in-flight request count), and campaigns from campaign
//! config files; all three formats are documented in `docs/FORMATS.md`.
//! `--gantt [width]` renders ASCII charts for any schedule-producing
//! subcommand; `simulate --json` emits a byte-stable, replayable report.
//!
//! This crate's library target exists for the parser and for end-to-end
//! tests; the binary (`src/main.rs`) is a thin argument-handling shell
//! over it.
//!
//! ## Example
//!
//! ```
//! use dlflow_cli::format::parse_instance;
//! use dlflow_core::maxflow::min_max_weighted_flow_divisible;
//!
//! let inst = parse_instance("
//!     job 0 1 blast-query
//!     job 1 2 prosite-scan
//!     machine 4 2
//!     machine 8 inf     # second databank absent here
//! ").unwrap();
//! let out = min_max_weighted_flow_divisible(&inst);
//! dlflow_core::validate::validate(&inst, &out.schedule).unwrap();
//! assert_eq!(out.schedule.max_weighted_flow(&inst), out.optimum);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
