//! Integration coverage for the `.dlf` token-level parsing helpers.

use dlflow_cli::format::parse_cost;
use dlflow_core::instance::Cost;
use dlflow_num::Rat;

#[test]
fn parse_cost_accepts_all_unavailable_spellings() {
    for tok in ["inf", "INF", "-", "x", "X"] {
        assert_eq!(parse_cost(tok, 1).unwrap(), Cost::Infinite);
    }
}

#[test]
fn parse_cost_reads_decimals_exactly() {
    assert_eq!(parse_cost("3", 1).unwrap(), Cost::Finite(Rat::from_i64(3)));
    assert_eq!(
        parse_cost("2.5", 1).unwrap(),
        Cost::Finite(Rat::from_ratio(5, 2))
    );
    assert!(parse_cost("nope", 7).is_err());
}
