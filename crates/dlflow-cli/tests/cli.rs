//! End-to-end tests of the `dlflow` binary via `std::process`.

use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_dlflow");

fn write_instance(content: &str) -> tempfile_path::TempPath {
    tempfile_path::TempPath::new(content)
}

/// Minimal self-cleaning temp-file helper (no tempfile crate offline).
mod tempfile_path {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    pub struct TempPath(pub PathBuf);

    impl TempPath {
        pub fn new(content: &str) -> TempPath {
            Self::with_ext(content, "dlf")
        }
        pub fn with_ext(content: &str, ext: &str) -> TempPath {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir().join(format!(
                "dlflow-cli-test-{}-{}.{ext}",
                std::process::id(),
                n
            ));
            let mut f = std::fs::File::create(&path).unwrap();
            use std::io::Write as _;
            f.write_all(content.as_bytes()).unwrap();
            TempPath(path)
        }
        pub fn as_str(&self) -> &str {
            self.0.to_str().unwrap()
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }
}

const DEMO: &str = "\
job 0 1 q1
job 1 4 q2
job 2 1 q3
machine 6 2 4
machine 9 inf 8
";

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(BIN).args(args).output().expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn maxflow_divisible_and_preemptive() {
    let f = write_instance(DEMO);
    let (ok, stdout, _) = run(&["maxflow", f.as_str()]);
    assert!(ok);
    assert!(stdout.contains("optimal max weighted flow"), "{stdout}");
    assert!(stdout.contains(": 8 "), "expected F* = 8 in: {stdout}");

    let (ok, stdout, _) = run(&["maxflow", f.as_str(), "--preemptive"]);
    assert!(ok);
    assert!(stdout.contains("§4.4"), "{stdout}");
}

#[test]
fn makespan_exact_rational() {
    let f = write_instance(DEMO);
    let (ok, stdout, _) = run(&["makespan", f.as_str()]);
    assert!(ok);
    assert!(stdout.contains("36/5"), "expected exact 36/5 in: {stdout}");
}

#[test]
fn deadline_feasible_and_infeasible() {
    let f = write_instance(DEMO);
    let (ok, stdout, _) = run(&["deadline", f.as_str(), "10", "4", "12"]);
    assert!(ok);
    assert!(stdout.contains("FEASIBLE"), "{stdout}");

    let (ok, stdout, stderr) = run(&["deadline", f.as_str(), "1", "2", "3"]);
    assert!(!ok);
    assert!(stdout.contains("INFEASIBLE"), "{stdout} / {stderr}");
}

#[test]
fn milestones_listing() {
    let f = write_instance(DEMO);
    let (ok, stdout, _) = run(&["milestones", f.as_str()]);
    assert!(ok);
    assert!(stdout.contains("4 distinct milestones"), "{stdout}");
    assert!(stdout.contains("F = 4/3"), "{stdout}");
}

#[test]
fn gantt_flag_draws_chart() {
    let f = write_instance(DEMO);
    let (ok, stdout, _) = run(&["maxflow", f.as_str(), "--gantt", "40"]);
    assert!(ok);
    assert!(stdout.contains("M1  |"), "{stdout}");
}

#[test]
fn errors_are_reported_with_context() {
    let (ok, _, stderr) = run(&["maxflow", "/nonexistent/path.dlf"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");

    let bad = write_instance("job 0 1\nmachine 4 2\n");
    let (ok, _, stderr) = run(&["maxflow", bad.as_str()]);
    assert!(!ok);
    assert!(stderr.contains("line 2"), "{stderr}");

    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"), "{stderr}");

    let (ok, _, stderr) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");
}

const CAMPAIGN_CFG: &str = "\
name clitest
seeds 2
sigbits 10
platform p servers=2 banks=3 heterogeneity=2
workload w jobs=4 load=1.0
scheduler mct
scheduler srpt
";

#[test]
fn campaign_subcommand_prints_and_writes_reports() {
    let f = write_instance(CAMPAIGN_CFG);
    let prefix = std::env::temp_dir().join(format!("dlflow-cli-camp-{}", std::process::id()));
    let prefix = prefix.to_str().unwrap().to_string();
    let (ok, stdout, stderr) = run(&["campaign", f.as_str()]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("Campaign `clitest`"), "{stdout}");
    assert!(stdout.contains("Head-to-head"), "{stdout}");

    // --serial produces byte-identical output.
    let (ok2, stdout2, _) = run(&["campaign", f.as_str(), "--serial"]);
    assert!(ok2);
    assert_eq!(stdout, stdout2);

    let (ok3, _, stderr3) = run(&["campaign", f.as_str(), "--out", &prefix]);
    assert!(ok3, "{stderr3}");
    let json = std::fs::read_to_string(format!("{prefix}.json")).unwrap();
    assert!(json.contains("\"campaign\": \"clitest\""));
    assert!(json.contains("\"stretch_ratio\""));
    let md = std::fs::read_to_string(format!("{prefix}.md")).unwrap();
    assert!(md.contains("| scheduler |"));
    let _ = std::fs::remove_file(format!("{prefix}.json"));
    let _ = std::fs::remove_file(format!("{prefix}.md"));
}

#[test]
fn campaign_config_errors_have_context() {
    let bad = write_instance("name x\nfrob 1\n");
    let (ok, _, stderr) = run(&["campaign", bad.as_str()]);
    assert!(!ok);
    assert!(stderr.contains("line 2"), "{stderr}");
    assert!(stderr.contains("frob"), "{stderr}");
}

#[test]
fn stretch_flag_reweights() {
    let f = write_instance(DEMO);
    let (ok, stdout, _) = run(&["maxflow", f.as_str(), "--stretch"]);
    assert!(ok);
    assert!(stdout.contains("max stretch"), "{stdout}");
}

const TRACE: &str = "\
# two servers, three requests
machines 1 2
arrival 0 4 1 *
arrival 1 2 2 10
arrival 3 1 1 01
";

#[test]
fn simulate_replays_instances_and_traces() {
    // Closed .dlf instance: per-job completions in the JSON.
    let f = write_instance(DEMO);
    let (ok, stdout, _) = run(&["simulate", f.as_str(), "--scheduler", "srpt"]);
    assert!(ok);
    assert!(stdout.contains("SRPT over instance"), "{stdout}");
    assert!(stdout.contains("makespan"), "{stdout}");

    let (ok, json, _) = run(&["simulate", f.as_str(), "--scheduler", "srpt", "--json"]);
    assert!(ok);
    assert!(json.contains("\"scheduler\": \"SRPT\""), "{json}");
    assert!(json.contains("\"completions\": ["), "{json}");

    // Open .dlt trace: streamed, no completion vector, byte-stable.
    let t = tempfile_path::TempPath::with_ext(TRACE, "dlt");
    let (ok, j1, _) = run(&["simulate", t.as_str(), "--json"]); // default scheduler
    assert!(ok, "{j1}");
    assert!(j1.contains("\"input\": \"trace\""), "{j1}");
    assert!(j1.contains("\"scheduler\": \"SWRPT\""), "{j1}");
    assert!(j1.contains("\"n_jobs\": 3"), "{j1}");
    assert!(!j1.contains("completions"), "{j1}");
    let (ok, j2, _) = run(&["simulate", t.as_str(), "--json"]);
    assert!(ok);
    assert_eq!(j1, j2, "simulate reports must be replayable byte-for-byte");

    // Scheduler options ride along in the compact spec.
    let (ok, stdout, _) = run(&["simulate", t.as_str(), "--scheduler", "edf:target=3"]);
    assert!(ok);
    assert!(stdout.contains("EDF(k=3)"), "{stdout}");
}

#[test]
fn simulate_errors_have_context() {
    let (ok, _, stderr) = run(&["simulate", "/nonexistent/trace.dlt"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");

    let t = tempfile_path::TempPath::with_ext("machines 1\narrival 0 1 1 0\n", "dlt");
    let (ok, _, stderr) = run(&["simulate", t.as_str()]);
    assert!(!ok);
    assert!(stderr.contains("line 2"), "{stderr}");

    let f = write_instance(DEMO);
    let (ok, _, stderr) = run(&["simulate", f.as_str(), "--scheduler", "zorp"]);
    assert!(!ok);
    assert!(stderr.contains("zorp"), "{stderr}");
}
