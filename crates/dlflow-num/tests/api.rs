//! Integration coverage for the arbitrary-precision building blocks
//! behind `Rat` — the surface a downstream exact-arithmetic user (or the
//! milestone binary search in `dlflow-core`) reaches for directly.

use dlflow_num::{IBig, Rat, UBig};

#[test]
fn ubig_predicates_and_bit_ops() {
    let one = UBig::from_u64(1);
    assert!(one.is_one());
    assert!(!one.is_even());
    let x = UBig::from_u64(40); // 0b101000
    assert!(x.is_even());
    assert_eq!(x.bit_len(), 6);
    assert_eq!(x.trailing_zeros(), Some(3));
    assert_eq!(UBig::zero().trailing_zeros(), None);
    assert_eq!(x.shr(3).to_u64(), Some(5));
}

#[test]
fn ubig_wide_round_trips_and_single_limb_arith() {
    let wide = u128::from(u64::MAX) + 7;
    let big = UBig::from_u128(wide);
    assert_eq!(big.to_u128(), Some(wide));
    assert_eq!(big.to_u64(), None);

    let prod = UBig::from_u64(123).mul_u64(1_000_000_007);
    let (q, r) = prod.div_rem_u64(1_000_000_007);
    assert_eq!(q.to_u64(), Some(123));
    assert_eq!(r, 0);
}

#[test]
fn ibig_sign_helpers_and_exact_division() {
    let m = IBig::neg_one();
    assert!(!m.is_one()); // is_one means +1, not |x| = 1
    assert_eq!(m.to_i64(), Some(-1));
    assert!(m.into_magnitude().is_one());

    let six = IBig::from_i64(6);
    let neg_three = IBig::from_i64(-3);
    assert_eq!(six.div_exact(&neg_three).to_i64(), Some(-2));
}

#[test]
fn rat_integrality_and_order_helpers() {
    let a = Rat::from_i64(2);
    let b = Rat::from_ratio(5, 2);
    assert!(a.is_integer());
    assert!(!b.is_integer());
    assert_eq!(a.midpoint(&b), Rat::from_ratio(9, 4));
    assert_eq!(a.min_ref(&b), &a);
    assert_eq!(a.max_ref(&b), &b);
}
