//! Property-based tests for the bignum substrate: algebraic laws checked
//! against `u128`/`i128` reference arithmetic and against themselves.

use dlflow_num::{IBig, Rat, UBig};
use proptest::prelude::*;

fn arb_ubig() -> impl Strategy<Value = UBig> {
    proptest::collection::vec(any::<u64>(), 0..6).prop_map(UBig::from_limbs)
}

fn arb_ibig() -> impl Strategy<Value = IBig> {
    (arb_ubig(), any::<bool>()).prop_map(|(m, neg)| {
        let v = IBig::from(m);
        if neg {
            -v
        } else {
            v
        }
    })
}

fn arb_rat() -> impl Strategy<Value = Rat> {
    (any::<i64>(), 1..=i64::MAX).prop_map(|(n, d)| Rat::from_ratio(n, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ubig_add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let got = UBig::from_u64(a).add(&UBig::from_u64(b));
        prop_assert_eq!(got, UBig::from_u128(a as u128 + b as u128));
    }

    #[test]
    fn ubig_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let got = UBig::from_u64(a).mul(&UBig::from_u64(b));
        prop_assert_eq!(got, UBig::from_u128(a as u128 * b as u128));
    }

    #[test]
    fn ubig_add_commutative(a in arb_ubig(), b in arb_ubig()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn ubig_add_associative(a in arb_ubig(), b in arb_ubig(), c in arb_ubig()) {
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn ubig_mul_commutative(a in arb_ubig(), b in arb_ubig()) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn ubig_mul_distributes(a in arb_ubig(), b in arb_ubig(), c in arb_ubig()) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn ubig_sub_inverts_add(a in arb_ubig(), b in arb_ubig()) {
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn ubig_div_rem_identity(a in arb_ubig(), b in arb_ubig()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(q.mul(&b).add(&r), a);
        prop_assert!(r < b);
    }

    #[test]
    fn ubig_gcd_divides_both(a in arb_ubig(), b in arb_ubig()) {
        let g = a.gcd(&b);
        if !g.is_zero() {
            prop_assert!(a.div_rem(&g).1.is_zero());
            prop_assert!(b.div_rem(&g).1.is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    #[test]
    fn ubig_shl_is_mul_pow2(a in arb_ubig(), bits in 0u64..130) {
        let two_pow = UBig::from_u64(2).pow(bits as u32);
        prop_assert_eq!(a.shl(bits), a.mul(&two_pow));
    }

    #[test]
    fn ubig_decimal_roundtrip(a in arb_ubig()) {
        let s = a.to_decimal_string();
        prop_assert_eq!(UBig::from_decimal_str(&s).unwrap(), a);
    }

    #[test]
    fn ibig_add_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let got = IBig::from_i64(a) + IBig::from_i64(b);
        prop_assert_eq!(got, IBig::from_i128(a as i128 + b as i128));
    }

    #[test]
    fn ibig_mul_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let got = IBig::from_i64(a) * IBig::from_i64(b);
        prop_assert_eq!(got, IBig::from_i128(a as i128 * b as i128));
    }

    #[test]
    fn ibig_ring_laws(a in arb_ibig(), b in arb_ibig(), c in arb_ibig()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!((&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&a - &a, IBig::zero());
    }

    #[test]
    fn ibig_ordering_matches_sub(a in arb_ibig(), b in arb_ibig()) {
        let d = &a - &b;
        prop_assert_eq!(a < b, d.is_negative());
        prop_assert_eq!(a == b, d.is_zero());
    }

    #[test]
    fn rat_field_laws(a in arb_rat(), b in arb_rat(), c in arb_rat()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!((&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        if !b.is_zero() {
            prop_assert_eq!(&(&a / &b) * &b, a.clone());
        }
    }

    #[test]
    fn rat_cmp_consistent_with_f64(n1 in -10_000i64..10_000, d1 in 1i64..10_000,
                                   n2 in -10_000i64..10_000, d2 in 1i64..10_000) {
        let a = Rat::from_ratio(n1, d1);
        let b = Rat::from_ratio(n2, d2);
        let fa = n1 as f64 / d1 as f64;
        let fb = n2 as f64 / d2 as f64;
        // Small integer ratios: f64 comparison is exact enough to agree
        // unless the two rationals are genuinely equal.
        if a != b {
            prop_assert_eq!(a < b, fa < fb);
        }
    }

    #[test]
    fn rat_f64_roundtrip(v in proptest::num::f64::NORMAL) {
        prop_assert_eq!(Rat::from_f64(v).to_f64(), v);
    }

    #[test]
    fn rat_floor_ceil_bracket(a in arb_rat()) {
        let fl = Rat::from_ibig(a.floor());
        let ce = Rat::from_ibig(a.ceil());
        prop_assert!(fl <= a && a <= ce);
        prop_assert!((&ce - &fl) <= Rat::one());
    }
}
