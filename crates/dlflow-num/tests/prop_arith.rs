//! Property-based tests for the bignum substrate: algebraic laws checked
//! against `u128`/`i128` reference arithmetic and against themselves.

use dlflow_num::{IBig, Rat, UBig};
use proptest::prelude::*;

fn arb_ubig() -> impl Strategy<Value = UBig> {
    proptest::collection::vec(any::<u64>(), 0..6).prop_map(UBig::from_limbs)
}

fn arb_ibig() -> impl Strategy<Value = IBig> {
    (arb_ubig(), any::<bool>()).prop_map(|(m, neg)| {
        let v = IBig::from(m);
        if neg {
            -v
        } else {
            v
        }
    })
}

fn arb_rat() -> impl Strategy<Value = Rat> {
    (any::<i64>(), 1..=i64::MAX).prop_map(|(n, d)| Rat::from_ratio(n, d))
}

/// A rational whose numerator straddles the `i64` boundary (within ±4 of
/// `±i64::MAX`), over a small denominator — right where `Rat`'s inline
/// fast path must hand over to (and take back from) the bignum path.
fn arb_boundary_rat() -> impl Strategy<Value = Rat> {
    (0i64..9, 1i64..64, any::<bool>()).prop_map(|(off, d, neg)| {
        let n = i64::MAX as i128 - 4 + off as i128;
        rat_i128(if neg { -n } else { n }, d)
    })
}

fn rat_i128(n: i128, d: i64) -> Rat {
    Rat::new(IBig::from_i128(n), IBig::from_i64(d))
}

/// Reference implementations computed purely on the bignum substrate
/// (`IBig`/`UBig` cross-multiplication), independent of `Rat`'s
/// overflow-checked inline arithmetic.
mod reference {
    use dlflow_num::{IBig, Rat};

    pub fn add(a: &Rat, b: &Rat) -> Rat {
        let n = a
            .numer()
            .mul_ref(&IBig::from(b.denom()))
            .add_ref(&b.numer().mul_ref(&IBig::from(a.denom())));
        Rat::from_parts(n, a.denom().mul(&b.denom()))
    }

    pub fn sub(a: &Rat, b: &Rat) -> Rat {
        add(a, &b.neg_ref())
    }

    pub fn mul(a: &Rat, b: &Rat) -> Rat {
        Rat::from_parts(a.numer().mul_ref(&b.numer()), a.denom().mul(&b.denom()))
    }

    pub fn div(a: &Rat, b: &Rat) -> Rat {
        let n = a.numer().mul_ref(&IBig::from(b.denom()));
        let d = IBig::from(a.denom()).mul_ref(&b.numer());
        Rat::new(n, d)
    }

    pub fn cmp(a: &Rat, b: &Rat) -> std::cmp::Ordering {
        let lhs = a.numer().mul_ref(&IBig::from(b.denom()));
        let rhs = b.numer().mul_ref(&IBig::from(a.denom()));
        lhs.cmp(&rhs)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ubig_add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let got = UBig::from_u64(a).add(&UBig::from_u64(b));
        prop_assert_eq!(got, UBig::from_u128(a as u128 + b as u128));
    }

    #[test]
    fn ubig_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let got = UBig::from_u64(a).mul(&UBig::from_u64(b));
        prop_assert_eq!(got, UBig::from_u128(a as u128 * b as u128));
    }

    #[test]
    fn ubig_add_commutative(a in arb_ubig(), b in arb_ubig()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn ubig_add_associative(a in arb_ubig(), b in arb_ubig(), c in arb_ubig()) {
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn ubig_mul_commutative(a in arb_ubig(), b in arb_ubig()) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn ubig_mul_distributes(a in arb_ubig(), b in arb_ubig(), c in arb_ubig()) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn ubig_sub_inverts_add(a in arb_ubig(), b in arb_ubig()) {
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn ubig_div_rem_identity(a in arb_ubig(), b in arb_ubig()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(q.mul(&b).add(&r), a);
        prop_assert!(r < b);
    }

    #[test]
    fn ubig_gcd_divides_both(a in arb_ubig(), b in arb_ubig()) {
        let g = a.gcd(&b);
        if !g.is_zero() {
            prop_assert!(a.div_rem(&g).1.is_zero());
            prop_assert!(b.div_rem(&g).1.is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    #[test]
    fn ubig_shl_is_mul_pow2(a in arb_ubig(), bits in 0u64..130) {
        let two_pow = UBig::from_u64(2).pow(bits as u32);
        prop_assert_eq!(a.shl(bits), a.mul(&two_pow));
    }

    #[test]
    fn ubig_decimal_roundtrip(a in arb_ubig()) {
        let s = a.to_decimal_string();
        prop_assert_eq!(UBig::from_decimal_str(&s).unwrap(), a);
    }

    #[test]
    fn ibig_add_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let got = IBig::from_i64(a) + IBig::from_i64(b);
        prop_assert_eq!(got, IBig::from_i128(a as i128 + b as i128));
    }

    #[test]
    fn ibig_mul_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let got = IBig::from_i64(a) * IBig::from_i64(b);
        prop_assert_eq!(got, IBig::from_i128(a as i128 * b as i128));
    }

    #[test]
    fn ibig_ring_laws(a in arb_ibig(), b in arb_ibig(), c in arb_ibig()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!((&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&a - &a, IBig::zero());
    }

    #[test]
    fn ibig_ordering_matches_sub(a in arb_ibig(), b in arb_ibig()) {
        let d = &a - &b;
        prop_assert_eq!(a < b, d.is_negative());
        prop_assert_eq!(a == b, d.is_zero());
    }

    #[test]
    fn rat_field_laws(a in arb_rat(), b in arb_rat(), c in arb_rat()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!((&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        if !b.is_zero() {
            prop_assert_eq!(&(&a / &b) * &b, a.clone());
        }
    }

    #[test]
    fn rat_cmp_consistent_with_f64(n1 in -10_000i64..10_000, d1 in 1i64..10_000,
                                   n2 in -10_000i64..10_000, d2 in 1i64..10_000) {
        let a = Rat::from_ratio(n1, d1);
        let b = Rat::from_ratio(n2, d2);
        let fa = n1 as f64 / d1 as f64;
        let fb = n2 as f64 / d2 as f64;
        // Small integer ratios: f64 comparison is exact enough to agree
        // unless the two rationals are genuinely equal.
        if a != b {
            prop_assert_eq!(a < b, fa < fb);
        }
    }

    #[test]
    fn rat_f64_roundtrip(v in proptest::num::f64::NORMAL) {
        prop_assert_eq!(Rat::from_f64(v).to_f64(), v);
    }

    #[test]
    fn rat_ops_agree_with_bignum_reference_at_boundary(
        a in arb_boundary_rat(),
        b in arb_boundary_rat(),
        small_n in -1000i64..1000,
        small_d in 1i64..1000,
    ) {
        // Operand pairs chosen so every op crosses the inline/bignum
        // promotion boundary in at least one direction.
        let s = Rat::from_ratio(small_n, small_d);
        for (x, y) in [(&a, &b), (&a, &s), (&s, &a)] {
            prop_assert_eq!(x.add_ref(y), reference::add(x, y));
            prop_assert_eq!(x.sub_ref(y), reference::sub(x, y));
            prop_assert_eq!(x.mul_ref(y), reference::mul(x, y));
            if !y.is_zero() {
                prop_assert_eq!(x.div_ref(y), reference::div(x, y));
            }
            prop_assert_eq!(x.cmp(y), reference::cmp(x, y));
        }
    }

    #[test]
    fn rat_promotion_roundtrips(a in arb_boundary_rat(), b in arb_boundary_rat()) {
        // Promote through an overflowing intermediate, then come back:
        // the result must re-enter the inline representation when it fits.
        prop_assert_eq!(a.add_ref(&b).sub_ref(&b), a.clone());
        if !b.is_zero() {
            prop_assert_eq!(a.mul_ref(&b).div_ref(&b), a.clone());
        }
        let one = a.add_ref(&Rat::one()).sub_ref(&a);
        prop_assert_eq!(one.clone(), Rat::one());
        prop_assert!(one.is_inline(), "demotion must restore the inline form");
    }

    #[test]
    fn rat_canonical_repr_is_value_determined(n in -100_000i64..100_000, d in 1i64..100_000) {
        // The same value built inline and via the bignum constructors must
        // be structurally equal (same variant), so Eq/Hash stay canonical.
        let inline = Rat::from_ratio(n, d);
        let via_big = Rat::new(IBig::from_i64(n), IBig::from_i64(d));
        prop_assert_eq!(inline.clone(), via_big.clone());
        prop_assert_eq!(inline.is_inline(), via_big.is_inline());
        prop_assert!(inline.is_inline());
    }

    #[test]
    fn rat_floor_ceil_bracket(a in arb_rat()) {
        let fl = Rat::from_ibig(a.floor());
        let ce = Rat::from_ibig(a.ceil());
        prop_assert!(fl <= a && a <= ce);
        prop_assert!((&ce - &fl) <= Rat::one());
    }
}
