//! Unsigned arbitrary-precision integers.
//!
//! [`UBig`] stores magnitude as little-endian `u64` limbs with no trailing
//! zero limbs (the canonical form; zero is the empty limb vector). All
//! arithmetic is exact. Multiplication switches from schoolbook to
//! Karatsuba above [`KARATSUBA_THRESHOLD`] limbs; division is Knuth's
//! Algorithm D (TAOCP vol. 2, 4.3.1).

use std::cmp::Ordering;
use std::fmt;

/// Limb count above which multiplication uses Karatsuba splitting.
pub const KARATSUBA_THRESHOLD: usize = 32;

const BITS: u32 = 64;

/// An unsigned arbitrary-precision integer.
///
/// Invariant: `limbs` has no trailing zeros; `limbs.is_empty()` ⇔ value 0.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct UBig {
    limbs: Vec<u64>,
}

impl UBig {
    /// The value 0.
    #[inline]
    pub fn zero() -> Self {
        UBig { limbs: Vec::new() }
    }

    /// The value 1.
    #[inline]
    pub fn one() -> Self {
        UBig { limbs: vec![1] }
    }

    /// Builds from a `u64`.
    #[inline]
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            UBig { limbs: vec![v] }
        }
    }

    /// Builds from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        if hi == 0 {
            Self::from_u64(lo)
        } else {
            UBig {
                limbs: vec![lo, hi],
            }
        }
    }

    /// Builds from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        UBig { limbs }
    }

    /// Read-only view of the little-endian limbs.
    #[inline]
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// `true` iff the value is 0.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` iff the value is 1.
    #[inline]
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// `true` iff the value is even (0 is even).
    #[inline]
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for the value 0).
    pub fn bit_len(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() as u64 - 1) * BITS as u64 + (BITS - top.leading_zeros()) as u64
            }
        }
    }

    /// Number of trailing zero bits; `None` for the value 0.
    pub fn trailing_zeros(&self) -> Option<u64> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i as u64 * BITS as u64 + l.trailing_zeros() as u64);
            }
        }
        None
    }

    /// Converts to `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// Lossy conversion to `f64` (round-to-nearest on the top 53 bits).
    pub fn to_f64(&self) -> f64 {
        match self.limbs.len() {
            0 => 0.0,
            1 => self.limbs[0] as f64,
            2 => self.limbs[0] as f64 + self.limbs[1] as f64 * 2f64.powi(64),
            n => {
                // Use the top 128 bits and scale by the remaining bit count.
                let hi = self.limbs[n - 1] as u128;
                let mid = self.limbs[n - 2] as u128;
                let top = (hi << 64) | mid;
                top as f64 * 2f64.powi(((n - 2) * 64) as i32)
            }
        }
    }

    /// Sum of two values.
    pub fn add(&self, other: &UBig) -> UBig {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let s = short.get(i).copied().unwrap_or(0);
            let (v1, c1) = long[i].overflowing_add(s);
            let (v2, c2) = v1.overflowing_add(carry);
            out.push(v2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        UBig::from_limbs(out)
    }

    /// Difference `self − other`; `None` when `self < other`.
    pub fn checked_sub(&self, other: &UBig) -> Option<UBig> {
        if self.cmp(other) == Ordering::Less {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let s = other.limbs.get(i).copied().unwrap_or(0);
            let (v1, b1) = self.limbs[i].overflowing_sub(s);
            let (v2, b2) = v1.overflowing_sub(borrow);
            out.push(v2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Some(UBig::from_limbs(out))
    }

    /// Difference `self − other`; panics when `self < other`.
    pub fn sub(&self, other: &UBig) -> UBig {
        self.checked_sub(other).expect("UBig::sub underflow")
    }

    /// Product of two values.
    pub fn mul(&self, other: &UBig) -> UBig {
        if self.is_zero() || other.is_zero() {
            return UBig::zero();
        }
        if self.limbs.len() >= KARATSUBA_THRESHOLD && other.limbs.len() >= KARATSUBA_THRESHOLD {
            mul_karatsuba(&self.limbs, &other.limbs)
        } else {
            mul_schoolbook(&self.limbs, &other.limbs)
        }
    }

    /// Product with a single `u64`.
    pub fn mul_u64(&self, m: u64) -> UBig {
        if m == 0 || self.is_zero() {
            return UBig::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let t = l as u128 * m as u128 + carry;
            out.push(t as u64);
            carry = t >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        UBig::from_limbs(out)
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: u64) -> UBig {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = (bits / BITS as u64) as usize;
        let bit_shift = (bits % BITS as u64) as u32;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (BITS - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        UBig::from_limbs(out)
    }

    /// Right shift by `bits` (towards zero).
    pub fn shr(&self, bits: u64) -> UBig {
        let limb_shift = (bits / BITS as u64) as usize;
        if limb_shift >= self.limbs.len() {
            return UBig::zero();
        }
        let bit_shift = (bits % BITS as u64) as u32;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi.checked_shl(BITS - bit_shift).unwrap_or(0)));
            }
        }
        UBig::from_limbs(out)
    }

    /// Quotient and remainder; panics when `divisor` is zero.
    pub fn div_rem(&self, divisor: &UBig) -> (UBig, UBig) {
        assert!(!divisor.is_zero(), "UBig::div_rem division by zero");
        match self.cmp(divisor) {
            Ordering::Less => return (UBig::zero(), self.clone()),
            Ordering::Equal => return (UBig::one(), UBig::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, UBig::from_u64(r));
        }
        div_rem_knuth(self, divisor)
    }

    /// Quotient and remainder by a single `u64`; panics when `d == 0`.
    pub fn div_rem_u64(&self, d: u64) -> (UBig, u64) {
        assert!(d != 0, "UBig::div_rem_u64 division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            out[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (UBig::from_limbs(out), rem as u64)
    }

    /// Greatest common divisor (binary GCD). `gcd(0, x) = x`.
    pub fn gcd(&self, other: &UBig) -> UBig {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let za = a.trailing_zeros().unwrap();
        let zb = b.trailing_zeros().unwrap();
        let shift = za.min(zb);
        a = a.shr(za);
        b = b.shr(zb);
        // Both odd now.
        loop {
            match a.cmp(&b) {
                Ordering::Equal => break,
                Ordering::Greater => {
                    a = a.sub(&b);
                    a = a.shr(a.trailing_zeros().unwrap());
                }
                Ordering::Less => {
                    b = b.sub(&a);
                    b = b.shr(b.trailing_zeros().unwrap());
                }
            }
        }
        a.shl(shift)
    }

    /// Integer exponentiation by squaring.
    pub fn pow(&self, mut exp: u32) -> UBig {
        let mut base = self.clone();
        let mut acc = UBig::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul(&base);
            }
        }
        acc
    }

    /// Parses a decimal string (ASCII digits only, optional leading zeros).
    pub fn from_decimal_str(s: &str) -> Result<UBig, ParseUBigError> {
        if s.is_empty() {
            return Err(ParseUBigError::Empty);
        }
        let mut acc = UBig::zero();
        // Consume 19-digit chunks: 10^19 fits in u64.
        let bytes = s.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let end = (i + 19).min(bytes.len());
            let chunk = &s[i..end];
            let v: u64 = chunk.parse().map_err(|_| ParseUBigError::InvalidDigit)?;
            let scale = 10u64.pow((end - i) as u32);
            acc = acc.mul_u64(scale).add(&UBig::from_u64(v));
            i = end;
        }
        Ok(acc)
    }

    /// Decimal string rendering.
    pub fn to_decimal_string(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        const CHUNK: u64 = 10_000_000_000_000_000_000; // 10^19
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut s = chunks.last().unwrap().to_string();
        for c in chunks.iter().rev().skip(1) {
            s.push_str(&format!("{c:019}"));
        }
        s
    }
}

/// Error parsing a [`UBig`] from text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseUBigError {
    /// The input string was empty.
    Empty,
    /// A non-digit character was found.
    InvalidDigit,
}

impl fmt::Display for ParseUBigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseUBigError::Empty => write!(f, "empty string"),
            ParseUBigError::InvalidDigit => write!(f, "invalid digit"),
        }
    }
}

impl std::error::Error for ParseUBigError {}

fn mul_schoolbook(a: &[u64], b: &[u64]) -> UBig {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let t = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = out[k] as u128 + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    UBig::from_limbs(out)
}

fn mul_karatsuba(a: &[u64], b: &[u64]) -> UBig {
    let n = a.len().min(b.len());
    if n < KARATSUBA_THRESHOLD {
        return mul_schoolbook(a, b);
    }
    let half = a.len().max(b.len()).div_ceil(2);
    let (a0, a1) = split_at_limb(a, half);
    let (b0, b1) = split_at_limb(b, half);
    let a0 = UBig::from_limbs(a0.to_vec());
    let a1 = UBig::from_limbs(a1.to_vec());
    let b0 = UBig::from_limbs(b0.to_vec());
    let b1 = UBig::from_limbs(b1.to_vec());

    let z0 = a0.mul(&b0);
    let z2 = a1.mul(&b1);
    let s1 = a0.add(&a1);
    let s2 = b0.add(&b1);
    let z1 = s1.mul(&s2).sub(&z0).sub(&z2);

    let shift = (half * 64) as u64;
    z2.shl(shift * 2).add(&z1.shl(shift)).add(&z0)
}

fn split_at_limb(x: &[u64], at: usize) -> (&[u64], &[u64]) {
    if at >= x.len() {
        (x, &[])
    } else {
        x.split_at(at)
    }
}

/// Knuth Algorithm D long division. Requires `u > v`, `v.limbs.len() >= 2`.
fn div_rem_knuth(u: &UBig, v: &UBig) -> (UBig, UBig) {
    let n = v.limbs.len();
    let m = u.limbs.len() - n;
    // D1: normalize so the divisor's top limb has its high bit set.
    let shift = v.limbs[n - 1].leading_zeros() as u64;
    let vn = v.shl(shift);
    let un_big = u.shl(shift);
    let mut un: Vec<u64> = un_big.limbs.clone();
    un.resize(u.limbs.len() + 1, 0); // one extra high limb
    let vn = &vn.limbs;
    debug_assert_eq!(vn.len(), n);

    let mut q = vec![0u64; m + 1];
    let b = 1u128 << 64;

    // D2..D7: main loop.
    for j in (0..=m).rev() {
        // D3: estimate qhat.
        let num = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
        let mut qhat = num / vn[n - 1] as u128;
        let mut rhat = num % vn[n - 1] as u128;
        loop {
            if qhat >= b || qhat * vn[n - 2] as u128 > ((rhat << 64) | un[j + n - 2] as u128) {
                qhat -= 1;
                rhat += vn[n - 1] as u128;
                if rhat < b {
                    continue;
                }
            }
            break;
        }
        // D4: multiply and subtract.
        let mut borrow: i128 = 0;
        let mut carry: u128 = 0;
        for i in 0..n {
            let p = qhat * vn[i] as u128 + carry;
            carry = p >> 64;
            let sub = (un[j + i] as i128) - (p as u64 as i128) + borrow;
            un[j + i] = sub as u64;
            borrow = sub >> 64;
        }
        let sub = (un[j + n] as i128) - (carry as i128) + borrow;
        un[j + n] = sub as u64;
        borrow = sub >> 64;

        q[j] = qhat as u64;
        // D5/D6: add back when the estimate was one too large.
        if borrow < 0 {
            q[j] -= 1;
            let mut carry = 0u128;
            for i in 0..n {
                let t = un[j + i] as u128 + vn[i] as u128 + carry;
                un[j + i] = t as u64;
                carry = t >> 64;
            }
            un[j + n] = un[j + n].wrapping_add(carry as u64);
        }
    }

    // D8: denormalize the remainder.
    let rem = UBig::from_limbs(un[..n].to_vec()).shr(shift);
    (UBig::from_limbs(q), rem)
}

impl Ord for UBig {
    fn cmp(&self, other: &Self) -> Ordering {
        let lc = self.limbs.len().cmp(&other.limbs.len());
        if lc != Ordering::Equal {
            return lc;
        }
        for i in (0..self.limbs.len()).rev() {
            let c = self.limbs[i].cmp(&other.limbs[i]);
            if c != Ordering::Equal {
                return c;
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for UBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "", &self.to_decimal_string())
    }
}

impl fmt::Debug for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<u64> for UBig {
    fn from(v: u64) -> Self {
        UBig::from_u64(v)
    }
}

impl From<u128> for UBig {
    fn from(v: u128) -> Self {
        UBig::from_u128(v)
    }
}

impl std::str::FromStr for UBig {
    type Err = ParseUBigError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        UBig::from_decimal_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ub(v: u128) -> UBig {
        UBig::from_u128(v)
    }

    #[test]
    fn zero_is_canonical() {
        assert!(UBig::zero().is_zero());
        assert_eq!(UBig::from_limbs(vec![0, 0, 0]), UBig::zero());
        assert_eq!(UBig::zero().bit_len(), 0);
    }

    #[test]
    fn add_small() {
        assert_eq!(ub(2).add(&ub(3)), ub(5));
        assert_eq!(ub(0).add(&ub(7)), ub(7));
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = ub(u64::MAX as u128);
        assert_eq!(a.add(&ub(1)), ub(1u128 << 64));
        let b = UBig::from_limbs(vec![u64::MAX, u64::MAX]);
        assert_eq!(b.add(&ub(1)), UBig::from_limbs(vec![0, 0, 1]));
    }

    #[test]
    fn sub_basics() {
        assert_eq!(ub(5).sub(&ub(3)), ub(2));
        assert_eq!(ub(5).sub(&ub(5)), UBig::zero());
        assert_eq!(ub(5).checked_sub(&ub(6)), None);
        let a = ub(1u128 << 64);
        assert_eq!(a.sub(&ub(1)), ub(u64::MAX as u128));
    }

    #[test]
    fn mul_basics() {
        assert_eq!(ub(6).mul(&ub(7)), ub(42));
        assert_eq!(ub(0).mul(&ub(7)), UBig::zero());
        let a = ub(u64::MAX as u128);
        assert_eq!(a.mul(&a), ub((u64::MAX as u128) * (u64::MAX as u128)));
    }

    #[test]
    fn mul_u64_matches_mul() {
        let a = UBig::from_decimal_str("123456789012345678901234567890").unwrap();
        assert_eq!(a.mul_u64(98765), a.mul(&ub(98765)));
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Deterministic pseudo-random limbs, big enough to hit Karatsuba.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let a: Vec<u64> = (0..80).map(|_| next()).collect();
        let b: Vec<u64> = (0..70).map(|_| next()).collect();
        let ka = mul_karatsuba(&a, &b);
        let sb = mul_schoolbook(&a, &b);
        assert_eq!(ka, sb);
    }

    #[test]
    fn shifts_roundtrip() {
        let a = UBig::from_decimal_str("987654321987654321987654321").unwrap();
        for bits in [0u64, 1, 17, 63, 64, 65, 128, 200] {
            assert_eq!(a.shl(bits).shr(bits), a, "bits={bits}");
        }
        assert_eq!(ub(5).shr(3), UBig::zero());
        assert_eq!(ub(5).shr(1), ub(2));
    }

    #[test]
    fn div_rem_small() {
        let (q, r) = ub(17).div_rem(&ub(5));
        assert_eq!((q, r), (ub(3), ub(2)));
        let (q, r) = ub(4).div_rem(&ub(5));
        assert_eq!((q, r), (UBig::zero(), ub(4)));
        let (q, r) = ub(5).div_rem(&ub(5));
        assert_eq!((q, r), (UBig::one(), UBig::zero()));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = ub(1).div_rem(&UBig::zero());
    }

    #[test]
    fn div_rem_multi_limb() {
        let a = UBig::from_decimal_str("340282366920938463463374607431768211456").unwrap(); // 2^128
        let b = UBig::from_decimal_str("18446744073709551629").unwrap(); // prime > 2^64
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r < b);
    }

    #[test]
    fn div_rem_reconstructs() {
        // A battery of division identities with pseudo-random values.
        let mut state = 42u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for nl in 1..6usize {
            for dl in 1..4usize {
                let a = UBig::from_limbs((0..nl).map(|_| next()).collect());
                let mut d = UBig::from_limbs((0..dl).map(|_| next()).collect());
                if d.is_zero() {
                    d = UBig::one();
                }
                let (q, r) = a.div_rem(&d);
                assert_eq!(q.mul(&d).add(&r), a);
                assert!(r < d);
            }
        }
    }

    #[test]
    fn knuth_add_back_case() {
        // Crafted to trigger the rare D6 add-back branch: u = b^2/2 - 1 style values.
        let u = UBig::from_limbs(vec![0, u64::MAX - 1, u64::MAX / 2]);
        let v = UBig::from_limbs(vec![u64::MAX, u64::MAX / 2 + 1]);
        let (q, r) = u.div_rem(&v);
        assert_eq!(q.mul(&v).add(&r), u);
        assert!(r < v);
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(ub(12).gcd(&ub(18)), ub(6));
        assert_eq!(ub(0).gcd(&ub(5)), ub(5));
        assert_eq!(ub(5).gcd(&UBig::zero()), ub(5));
        assert_eq!(ub(1).gcd(&ub(999)), ub(1));
        let a = ub(2 * 3 * 5 * 7 * 11 * 13);
        let b = ub(3 * 7 * 13 * 17);
        assert_eq!(a.gcd(&b), ub(3 * 7 * 13));
    }

    #[test]
    fn gcd_large() {
        let a = UBig::from_decimal_str("123456789012345678901234567890").unwrap();
        let g = ub(30);
        let b = UBig::from_decimal_str("987654321098765432109876543210").unwrap();
        let got = a.gcd(&b);
        // gcd must divide both.
        assert_eq!(a.div_rem(&got).1, UBig::zero());
        assert_eq!(b.div_rem(&got).1, UBig::zero());
        assert_eq!(got.div_rem(&g).1, UBig::zero());
    }

    #[test]
    fn pow_works() {
        assert_eq!(ub(2).pow(10), ub(1024));
        assert_eq!(ub(10).pow(0), UBig::one());
        assert_eq!(ub(3).pow(5), ub(243));
        assert_eq!(
            ub(10).pow(30),
            UBig::from_decimal_str("1000000000000000000000000000000").unwrap()
        );
    }

    #[test]
    fn decimal_roundtrip() {
        for s in [
            "0",
            "1",
            "9",
            "10",
            "18446744073709551616",
            "123456789012345678901234567890123456789",
        ] {
            let v = UBig::from_decimal_str(s).unwrap();
            assert_eq!(v.to_decimal_string(), s);
        }
        assert!(UBig::from_decimal_str("").is_err());
        assert!(UBig::from_decimal_str("12a").is_err());
        assert!(UBig::from_decimal_str("-1").is_err());
    }

    #[test]
    fn ordering() {
        assert!(ub(3) < ub(4));
        assert!(UBig::from_limbs(vec![0, 1]) > ub(u64::MAX as u128));
        assert_eq!(ub(7).cmp(&ub(7)), Ordering::Equal);
    }

    #[test]
    fn bit_len_and_trailing() {
        assert_eq!(ub(1).bit_len(), 1);
        assert_eq!(ub(255).bit_len(), 8);
        assert_eq!(ub(256).bit_len(), 9);
        assert_eq!(ub(1u128 << 64).bit_len(), 65);
        assert_eq!(ub(12).trailing_zeros(), Some(2));
        assert_eq!(UBig::zero().trailing_zeros(), None);
        assert_eq!(ub(1u128 << 64).trailing_zeros(), Some(64));
    }

    #[test]
    fn to_f64_reasonable() {
        assert_eq!(ub(0).to_f64(), 0.0);
        assert_eq!(ub(12345).to_f64(), 12345.0);
        let big = UBig::from_decimal_str("100000000000000000000").unwrap();
        let rel = (big.to_f64() - 1e20).abs() / 1e20;
        assert!(rel < 1e-12);
    }
}
