//! Exact rational numbers with an inline small-value fast path.
//!
//! [`Rat`] is a tagged union: values whose reduced numerator fits an `i64`
//! and whose reduced denominator fits a `u64` live inline (no heap
//! allocation at all), and every arithmetic op on two inline values runs
//! in machine integers with overflow checks, promoting to the
//! arbitrary-precision ([`IBig`]/[`UBig`]) path only when an intermediate
//! genuinely overflows. Every bignum result is *demoted* back to the
//! inline form when it fits, so the representation is canonical: two equal
//! values always share a variant, and derived `Eq`/`Hash` stay structural.
//!
//! This matters because the simplex pivots of `dlflow-lp` spend most of
//! their time on coefficients like 0, 1 and small ratios; with the dense
//! bignum representation every one of those heap-allocated.

use crate::ibig::{IBig, Sign};
use crate::ubig::UBig;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number.
///
/// Invariants: the denominator is ≥ 1 and `gcd(|num|, den) = 1`
/// (fully reduced); the sign lives on the numerator; any value
/// representable inline (`i64` numerator, `u64` denominator) is stored
/// inline.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rat {
    repr: Repr,
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// Inline fast path: `num / den`, reduced, `den ≥ 1`.
    Small { num: i64, den: u64 },
    /// Bignum fallback for values outside the inline range.
    Big(Box<BigRat>),
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct BigRat {
    num: IBig,
    den: UBig,
}

/// Euclidean GCD on `u64` (`b ≥ 1` in all internal uses).
#[inline]
fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Euclidean GCD on `u128`.
#[inline]
fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Narrows a signed magnitude to `i64`, honouring the full `i64::MIN` range.
#[inline]
fn narrow_i64(negative: bool, mag: u128) -> Option<i64> {
    if !negative {
        (mag <= i64::MAX as u128).then_some(mag as i64) // dlflint:allow(lossy-cast, "guarded: mag <= i64::MAX on this line")
    } else if mag <= i64::MAX as u128 + 1 {
        Some((mag as u64).wrapping_neg() as i64) // dlflint:allow(lossy-cast, "mag <= 2^63: wrapping-neg encodes i64::MIN exactly")
    } else {
        None
    }
}

impl Rat {
    /// The value 0.
    #[inline]
    pub fn zero() -> Self {
        Rat {
            repr: Repr::Small { num: 0, den: 1 },
        }
    }

    /// The value 1.
    #[inline]
    pub fn one() -> Self {
        Rat {
            repr: Repr::Small { num: 1, den: 1 },
        }
    }

    #[inline]
    fn small(num: i64, den: u64) -> Self {
        debug_assert!(den >= 1);
        debug_assert!(num == 0 || gcd_u64(num.unsigned_abs(), den) == 1);
        debug_assert!(num != 0 || den == 1);
        Rat {
            repr: Repr::Small { num, den },
        }
    }

    /// Builds from an *already reduced* sign + magnitude over a wide
    /// denominator, choosing the inline or bignum representation.
    fn from_u128_reduced(negative: bool, mag: u128, den: u128) -> Self {
        debug_assert!(den >= 1);
        if mag == 0 {
            return Rat::zero();
        }
        if den <= u64::MAX as u128 {
            if let Some(n) = narrow_i64(negative, mag) {
                return Rat::small(n, den as u64); // dlflint:allow(lossy-cast, "guarded: den <= u64::MAX two lines up")
            }
        }
        let sign = if negative { Sign::Minus } else { Sign::Plus };
        Rat {
            repr: Repr::Big(Box::new(BigRat {
                num: IBig::from_sign_mag(sign, UBig::from_u128(mag)),
                den: UBig::from_u128(den),
            })),
        }
    }

    /// Builds from an *already reduced* `num / den` in wide integers.
    #[inline]
    fn from_i128_reduced(num: i128, den: u128) -> Self {
        Rat::from_u128_reduced(num < 0, num.unsigned_abs(), den)
    }

    /// Builds from unreduced `num / den` in wide integers.
    fn from_i128_parts(num: i128, den: u128) -> Self {
        debug_assert!(den >= 1);
        if num == 0 {
            return Rat::zero();
        }
        let mag = num.unsigned_abs();
        let g = gcd_u128(mag, den);
        Rat::from_u128_reduced(num < 0, mag / g, den / g)
    }

    /// Materializes the bignum form of the value (cheap for inline values).
    fn big_parts(&self) -> (IBig, UBig) {
        match &self.repr {
            Repr::Small { num, den } => (IBig::from_i64(*num), UBig::from_u64(*den)),
            Repr::Big(b) => (b.num.clone(), b.den.clone()),
        }
    }

    /// Builds and normalizes `num / den`; panics when `den` is zero.
    pub fn new(num: IBig, den: IBig) -> Self {
        assert!(!den.is_zero(), "Rat::new zero denominator");
        let num = if den.is_negative() {
            num.neg_ref()
        } else {
            num
        };
        Rat::from_parts(num, den.into_magnitude())
    }

    /// Builds and normalizes a signed numerator over an unsigned
    /// denominator, demoting to the inline representation when it fits.
    pub fn from_parts(num: IBig, den: UBig) -> Self {
        assert!(!den.is_zero(), "Rat::from_parts zero denominator");
        if num.is_zero() {
            return Rat::zero();
        }
        let g = num.magnitude().gcd(&den);
        let (nm, dn) = if g.is_one() {
            (num.magnitude().clone(), den)
        } else {
            (num.magnitude().div_rem(&g).0, den.div_rem(&g).0)
        };
        if let (Some(d), Some(m)) = (dn.to_u64(), nm.to_u128()) {
            if let Some(n) = narrow_i64(num.is_negative(), m) {
                return Rat::small(n, d);
            }
        }
        Rat {
            repr: Repr::Big(Box::new(BigRat {
                num: IBig::from_sign_mag(num.sign(), nm),
                den: dn,
            })),
        }
    }

    /// Builds from an integer.
    #[inline]
    pub fn from_i64(v: i64) -> Self {
        Rat::small(v, 1)
    }

    /// Builds from an integer ratio; panics when `den == 0`.
    pub fn from_ratio(num: i64, den: i64) -> Self {
        assert!(den != 0, "Rat::from_ratio zero denominator");
        let n = if den < 0 { -(num as i128) } else { num as i128 };
        Rat::from_i128_parts(n, den.unsigned_abs() as u128)
    }

    /// Builds from an [`IBig`] integer.
    pub fn from_ibig(v: IBig) -> Self {
        Rat::from_parts(v, UBig::one())
    }

    /// The (signed) numerator.
    ///
    /// Returned by value: inline values materialize it on demand.
    pub fn numer(&self) -> IBig {
        match &self.repr {
            Repr::Small { num, .. } => IBig::from_i64(*num),
            Repr::Big(b) => b.num.clone(),
        }
    }

    /// The (positive) denominator.
    ///
    /// Returned by value: inline values materialize it on demand.
    pub fn denom(&self) -> UBig {
        match &self.repr {
            Repr::Small { den, .. } => UBig::from_u64(*den),
            Repr::Big(b) => b.den.clone(),
        }
    }

    /// `true` iff the value is stored in the inline (non-allocating)
    /// representation. Exposed for tests and diagnostics.
    #[inline]
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Small { .. })
    }

    /// `true` iff the value is 0.
    #[inline]
    pub fn is_zero(&self) -> bool {
        match &self.repr {
            Repr::Small { num, .. } => *num == 0,
            Repr::Big(b) => b.num.is_zero(),
        }
    }

    /// `true` iff the value is strictly negative.
    #[inline]
    pub fn is_negative(&self) -> bool {
        match &self.repr {
            Repr::Small { num, .. } => *num < 0,
            Repr::Big(b) => b.num.is_negative(),
        }
    }

    /// `true` iff the value is strictly positive.
    #[inline]
    pub fn is_positive(&self) -> bool {
        match &self.repr {
            Repr::Small { num, .. } => *num > 0,
            Repr::Big(b) => b.num.is_positive(),
        }
    }

    /// `true` iff the value is an integer.
    #[inline]
    pub fn is_integer(&self) -> bool {
        match &self.repr {
            Repr::Small { den, .. } => *den == 1,
            Repr::Big(b) => b.den.is_one(),
        }
    }

    /// Sum.
    pub fn add_ref(&self, o: &Rat) -> Rat {
        if let (Repr::Small { num: a, den: b }, Repr::Small { num: c, den: d }) =
            (&self.repr, &o.repr)
        {
            // Fast path: both integers.
            if *b == 1 && *d == 1 {
                if let Some(n) = a.checked_add(*c) {
                    return Rat::small(n, 1);
                }
            }
            // a/b + c/d = (a·(d/g) + c·(b/g)) / ((b/g)·d)  with g = gcd(b, d).
            let g = gcd_u64(*b, *d);
            let (b1, d1) = (b / g, d / g);
            let x = *a as i128 * d1 as i128; // |a|·d1 < 2^127: never overflows
            let y = *c as i128 * b1 as i128;
            if let Some(n) = x.checked_add(y) {
                return Rat::from_i128_parts(n, b1 as u128 * *d as u128);
            }
            // Intermediate overflow: fall through to the bignum path.
        }
        let (an, ad) = self.big_parts();
        let (bn, bd) = o.big_parts();
        let n = an
            .mul_ref(&IBig::from(bd.clone()))
            .add_ref(&bn.mul_ref(&IBig::from(ad.clone())));
        Rat::from_parts(n, ad.mul(&bd))
    }

    /// Difference.
    pub fn sub_ref(&self, o: &Rat) -> Rat {
        if let (Repr::Small { num: a, den: b }, Repr::Small { num: c, den: d }) =
            (&self.repr, &o.repr)
        {
            if *b == 1 && *d == 1 {
                if let Some(n) = a.checked_sub(*c) {
                    return Rat::small(n, 1);
                }
            }
            let g = gcd_u64(*b, *d);
            let (b1, d1) = (b / g, d / g);
            let x = *a as i128 * d1 as i128;
            let y = *c as i128 * b1 as i128;
            if let Some(n) = x.checked_sub(y) {
                return Rat::from_i128_parts(n, b1 as u128 * *d as u128);
            }
        }
        self.add_ref(&o.neg_ref())
    }

    /// Product.
    pub fn mul_ref(&self, o: &Rat) -> Rat {
        if let (Repr::Small { num: a, den: b }, Repr::Small { num: c, den: d }) =
            (&self.repr, &o.repr)
        {
            if *a == 0 || *c == 0 {
                return Rat::zero();
            }
            // Cross-reduce before multiplying; the result is then already
            // in lowest terms and every product fits a wide integer.
            let g1 = gcd_u64(a.unsigned_abs(), *d);
            let g2 = gcd_u64(c.unsigned_abs(), *b);
            let n = (*a as i128 / g1 as i128) * (*c as i128 / g2 as i128);
            let den = (b / g2) as u128 * (d / g1) as u128;
            return Rat::from_i128_reduced(n, den);
        }
        let (an, ad) = self.big_parts();
        let (bn, bd) = o.big_parts();
        Rat::from_parts(an.mul_ref(&bn), ad.mul(&bd))
    }

    /// Quotient; panics when `o` is zero.
    pub fn div_ref(&self, o: &Rat) -> Rat {
        assert!(!o.is_zero(), "Rat::div_ref division by zero");
        if let (Repr::Small { num: a, den: b }, Repr::Small { num: c, den: d }) =
            (&self.repr, &o.repr)
        {
            if *a == 0 {
                return Rat::zero();
            }
            // (a/b) / (c/d) = (a·d) / (b·c), sign carried by c.
            let g1 = gcd_u64(a.unsigned_abs(), c.unsigned_abs());
            let g2 = gcd_u64(*d, *b);
            let mut n = (*a as i128 / g1 as i128) * (d / g2) as i128;
            if *c < 0 {
                n = -n;
            }
            let den = (b / g2) as u128 * (c.unsigned_abs() / g1) as u128;
            return Rat::from_i128_reduced(n, den);
        }
        let (an, ad) = self.big_parts();
        let (bn, bd) = o.big_parts();
        let n = an.mul_ref(&IBig::from(bd));
        let d = IBig::from(ad).mul_ref(&bn);
        Rat::new(n, d)
    }

    /// Negation.
    pub fn neg_ref(&self) -> Rat {
        match &self.repr {
            Repr::Small { num, den } => Rat::from_i128_reduced(-(*num as i128), *den as u128),
            Repr::Big(b) => {
                // Already reduced; only the sign flips, so demotion needs
                // no gcd — just a fit check (relevant at exactly −i64::MIN).
                let num = b.num.neg_ref();
                if let (Some(n), Some(d)) = (num.to_i64(), b.den.to_u64()) {
                    return Rat::small(n, d);
                }
                Rat {
                    repr: Repr::Big(Box::new(BigRat {
                        num,
                        den: b.den.clone(),
                    })),
                }
            }
        }
    }

    /// Multiplicative inverse; panics on zero.
    pub fn recip(&self) -> Rat {
        assert!(!self.is_zero(), "Rat::recip of zero");
        match &self.repr {
            Repr::Small { num, den } => {
                let n = if *num < 0 {
                    -(*den as i128)
                } else {
                    *den as i128
                };
                Rat::from_i128_reduced(n, num.unsigned_abs() as u128)
            }
            Repr::Big(b) => Rat::new(IBig::from(b.den.clone()), b.num.clone()),
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Rat {
        if self.is_negative() {
            self.neg_ref()
        } else {
            self.clone()
        }
    }

    /// Exponentiation by a (possibly negative) integer power.
    pub fn powi(&self, exp: i32) -> Rat {
        if exp >= 0 {
            let (n, d) = self.big_parts();
            Rat::from_parts(n.pow(exp as u32), d.pow(exp as u32)) // dlflint:allow(lossy-cast, "guarded: exp >= 0 on the branch, so it fits u32")
        } else {
            // `unsigned_abs` rather than `-exp`: negating i32::MIN overflows.
            let e = exp.unsigned_abs();
            let (n, d) = self.recip().big_parts();
            Rat::from_parts(n.pow(e), d.pow(e))
        }
    }

    /// Midpoint `(self + other) / 2` — used by the milestone binary search.
    pub fn midpoint(&self, other: &Rat) -> Rat {
        self.add_ref(other).div_ref(&Rat::from_i64(2))
    }

    /// Minimum of two values by reference.
    pub fn min_ref<'a>(&'a self, other: &'a Rat) -> &'a Rat {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two values by reference.
    pub fn max_ref<'a>(&'a self, other: &'a Rat) -> &'a Rat {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Lossy conversion to `f64`, robust to magnitudes far outside the
    /// `f64` range of either numerator or denominator alone.
    pub fn to_f64(&self) -> f64 {
        if let Repr::Small { num, den } = &self.repr {
            // Both operands exactly representable: the single rounding of
            // the division yields the correctly rounded result.
            const EXACT: u64 = 1 << 53;
            if num.unsigned_abs() <= EXACT && *den <= EXACT {
                return *num as f64 / *den as f64;
            }
        }
        if self.is_zero() {
            return 0.0;
        }
        let (num, den) = self.big_parts();
        let nbits = num.magnitude().bit_len() as i64; // dlflint:allow(lossy-cast, "bit lengths are bounded far below i64::MAX")
        let dbits = den.bit_len() as i64; // dlflint:allow(lossy-cast, "bit lengths are bounded far below i64::MAX")
                                          // Scale the numerator so the integer quotient has ~64 significant bits.
        let shift = dbits + 64 - nbits;
        let scaled = if shift >= 0 {
            num.magnitude().shl(shift as u64) // dlflint:allow(lossy-cast, "guarded: shift >= 0 on the branch")
        } else {
            num.magnitude().shr((-shift) as u64) // dlflint:allow(lossy-cast, "guarded: shift < 0, so -shift is positive")
        };
        let q = scaled.div_rem(&den).0;
        let mag = mul_pow2(q.to_f64(), -shift);
        if num.is_negative() {
            -mag
        } else {
            mag
        }
    }

    /// Builds the exact rational equal to a finite `f64`.
    ///
    /// Panics on NaN or infinity.
    pub fn from_f64(v: f64) -> Rat {
        assert!(v.is_finite(), "Rat::from_f64 of non-finite value");
        if v == 0.0 {
            return Rat::zero();
        }
        let bits = v.to_bits();
        let sign = if bits >> 63 == 1 {
            Sign::Minus
        } else {
            Sign::Plus
        };
        let exp_bits = ((bits >> 52) & 0x7FF) as i64; // dlflint:allow(lossy-cast, "masked to the 11-bit exponent field")
        let frac = bits & ((1u64 << 52) - 1);
        let (mantissa, exp) = if exp_bits == 0 {
            (frac, -1074i64) // subnormal
        } else {
            (frac | (1u64 << 52), exp_bits - 1075)
        };
        let m = IBig::from_sign_mag(sign, UBig::from_u64(mantissa));
        if exp >= 0 {
            Rat::from_parts(
                IBig::from_sign_mag(m.sign(), m.magnitude().shl(exp as u64)), // dlflint:allow(lossy-cast, "guarded: exp >= 0 on the branch")
                UBig::one(),
            )
        } else {
            Rat::from_parts(m, UBig::one().shl((-exp) as u64)) // dlflint:allow(lossy-cast, "guarded: exp < 0, so -exp is positive")
        }
    }

    /// Parses `"a/b"` or `"a"` (decimal integers, optional sign).
    pub fn from_str_ratio(s: &str) -> Result<Rat, crate::ubig::ParseUBigError> {
        match s.split_once('/') {
            Some((n, d)) => Ok(Rat::new(
                IBig::from_decimal_str(n.trim())?,
                IBig::from_decimal_str(d.trim())?,
            )),
            None => Ok(Rat::from_ibig(IBig::from_decimal_str(s.trim())?)),
        }
    }

    /// Floor (greatest integer ≤ self) as an [`IBig`].
    pub fn floor(&self) -> IBig {
        if let Repr::Small { num, den } = &self.repr {
            return IBig::from_i128((*num as i128).div_euclid(*den as i128));
        }
        let (num, den) = self.big_parts();
        let den = IBig::from(den);
        let (q, r) = num.div_rem(&den);
        if num.is_negative() && !r.is_zero() {
            q.sub_ref(&IBig::one())
        } else {
            q
        }
    }

    /// Ceiling (least integer ≥ self) as an [`IBig`].
    pub fn ceil(&self) -> IBig {
        self.neg_ref().floor().neg_ref()
    }
}

/// Multiplies by 2^e in steps that keep every intermediate factor a
/// *normal* f64, so precision is not lost to subnormal intermediates.
fn mul_pow2(mut x: f64, mut e: i64) -> f64 {
    const STEP: i64 = 900; // comfortably below the f64 exponent range
    while e > STEP {
        x *= 2f64.powi(STEP as i32); // dlflint:allow(lossy-cast, "STEP is the constant 900")
        e -= STEP;
    }
    while e < -STEP {
        x *= 2f64.powi(-STEP as i32); // dlflint:allow(lossy-cast, "STEP is the constant 900")
        e += STEP;
    }
    x * 2f64.powi(e as i32) // dlflint:allow(lossy-cast, "loop exit bounds |e| <= STEP = 900")
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  ⇔  a·d ? c·b   (b, d > 0)
        if let (Repr::Small { num: a, den: b }, Repr::Small { num: c, den: d }) =
            (&self.repr, &other.repr)
        {
            let lhs = *a as i128 * *d as i128;
            let rhs = *c as i128 * *b as i128;
            return lhs.cmp(&rhs);
        }
        let (an, ad) = self.big_parts();
        let (bn, bd) = other.big_parts();
        let lhs = an.mul_ref(&IBig::from(bd));
        let rhs = bn.mul_ref(&IBig::from(ad));
        lhs.cmp(&rhs)
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.repr {
            Repr::Small { num, den } => {
                if *den == 1 {
                    write!(f, "{num}")
                } else {
                    write!(f, "{num}/{den}")
                }
            }
            Repr::Big(b) => {
                if b.den.is_one() {
                    write!(f, "{}", b.num)
                } else {
                    write!(f, "{}/{}", b.num, b.den)
                }
            }
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::zero()
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Self {
        Rat::from_i64(v)
    }
}

impl From<IBig> for Rat {
    fn from(v: IBig) -> Self {
        Rat::from_ibig(v)
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        self.neg_ref()
    }
}

impl Neg for &Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        self.neg_ref()
    }
}

macro_rules! forward_rat_binop {
    ($trait:ident, $method:ident, $inner:ident) => {
        impl $trait for Rat {
            type Output = Rat;
            fn $method(self, rhs: Rat) -> Rat {
                self.$inner(&rhs)
            }
        }
        impl $trait<&Rat> for Rat {
            type Output = Rat;
            fn $method(self, rhs: &Rat) -> Rat {
                self.$inner(rhs)
            }
        }
        impl $trait<Rat> for &Rat {
            type Output = Rat;
            fn $method(self, rhs: Rat) -> Rat {
                self.$inner(&rhs)
            }
        }
        impl $trait for &Rat {
            type Output = Rat;
            fn $method(self, rhs: &Rat) -> Rat {
                self.$inner(rhs)
            }
        }
    };
}

forward_rat_binop!(Add, add, add_ref);
forward_rat_binop!(Sub, sub, sub_ref);
forward_rat_binop!(Mul, mul, mul_ref);
forward_rat_binop!(Div, div, div_ref);

impl AddAssign<&Rat> for Rat {
    fn add_assign(&mut self, rhs: &Rat) {
        *self = self.add_ref(rhs);
    }
}

impl SubAssign<&Rat> for Rat {
    fn sub_assign(&mut self, rhs: &Rat) {
        *self = self.sub_ref(rhs);
    }
}

impl MulAssign<&Rat> for Rat {
    fn mul_assign(&mut self, rhs: &Rat) {
        *self = self.mul_ref(rhs);
    }
}

impl DivAssign<&Rat> for Rat {
    fn div_assign(&mut self, rhs: &Rat) {
        *self = self.div_ref(rhs);
    }
}

// Serialization: `Rat` round-trips losslessly through its `Display` form
// (`"n/d"`) and `Rat::from_str_ratio`, so callers that need serde support
// can wrap it in a newtype with string-based impls. The build environment
// has no registry access, so serde itself is not a dependency here.

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rat {
        Rat::from_ratio(n, d)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, 4), r(1, -2));
        assert_eq!(r(0, 5), Rat::zero());
        assert_eq!(r(6, 3), Rat::from_i64(2));
        assert!(r(1, -2).is_negative());
        assert_eq!(r(-3, -6), r(1, 2));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn field_ops() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), Rat::from_i64(2));
        assert_eq!(-r(1, 2), r(-1, 2));
        assert_eq!(r(3, 7).recip(), r(7, 3));
    }

    #[test]
    fn comparisons() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(2, 4) == r(1, 2));
        assert!(r(7, 2) > Rat::from_i64(3));
        assert!(Rat::zero() < r(1, 1_000_000));
    }

    #[test]
    fn powi_and_midpoint() {
        assert_eq!(r(2, 3).powi(2), r(4, 9));
        assert_eq!(r(2, 3).powi(-1), r(3, 2));
        assert_eq!(r(2, 3).powi(0), Rat::one());
        assert_eq!(r(1, 2).midpoint(&r(1, 4)), r(3, 8));
    }

    #[test]
    fn powi_extreme_negative_exponent() {
        // -(i32::MIN) overflows i32; powi must not recurse on it.
        assert_eq!(Rat::one().powi(i32::MIN), Rat::one());
        assert_eq!(Rat::from_i64(-1).powi(i32::MIN), Rat::one()); // even exponent
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor(), IBig::from_i64(3));
        assert_eq!(r(7, 2).ceil(), IBig::from_i64(4));
        assert_eq!(r(-7, 2).floor(), IBig::from_i64(-4));
        assert_eq!(r(-7, 2).ceil(), IBig::from_i64(-3));
        assert_eq!(Rat::from_i64(5).floor(), IBig::from_i64(5));
        assert_eq!(Rat::from_i64(5).ceil(), IBig::from_i64(5));
    }

    #[test]
    fn f64_roundtrip_exact() {
        for v in [
            0.0,
            1.0,
            -1.5,
            0.1,
            3.25,
            -1024.0,
            1e-300,
            1e300,
            f64::MIN_POSITIVE,
        ] {
            let rat = Rat::from_f64(v);
            assert_eq!(rat.to_f64(), v, "roundtrip {v}");
        }
    }

    #[test]
    fn from_f64_known_values() {
        assert_eq!(Rat::from_f64(0.5), r(1, 2));
        assert_eq!(Rat::from_f64(0.25), r(1, 4));
        assert_eq!(Rat::from_f64(-3.0), Rat::from_i64(-3));
    }

    #[test]
    fn to_f64_huge_magnitudes() {
        // num and den both overflow f64 individually; the ratio must not.
        let big = IBig::from_decimal_str(&("1".to_owned() + &"0".repeat(400))).unwrap();
        let x = Rat::new(big.mul_ref(&IBig::from_i64(3)), big.clone());
        assert!((x.to_f64() - 3.0).abs() < 1e-12);
        let y = Rat::new(big.clone(), big.mul_ref(&IBig::from_i64(4)));
        assert!((y.to_f64() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn parse_ratio() {
        assert_eq!(Rat::from_str_ratio("3/4").unwrap(), r(3, 4));
        assert_eq!(Rat::from_str_ratio("-3/4").unwrap(), r(-3, 4));
        assert_eq!(Rat::from_str_ratio("5").unwrap(), Rat::from_i64(5));
        assert_eq!(Rat::from_str_ratio(" 1 / 2 ").unwrap(), r(1, 2));
        assert!(Rat::from_str_ratio("x/2").is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(r(1, 2).to_string(), "1/2");
        assert_eq!(Rat::from_i64(-7).to_string(), "-7");
        assert_eq!(Rat::zero().to_string(), "0");
    }

    #[test]
    fn min_max_ref() {
        let a = r(1, 3);
        let b = r(1, 2);
        assert_eq!(a.min_ref(&b), &a);
        assert_eq!(a.max_ref(&b), &b);
    }

    // ---- inline fast-path specifics ----

    /// Bignum-only reference implementation of `a/b + c/d`.
    fn big_add(a: &Rat, b: &Rat) -> Rat {
        let (an, ad) = a.big_parts();
        let (bn, bd) = b.big_parts();
        let n = an
            .mul_ref(&IBig::from(bd.clone()))
            .add_ref(&bn.mul_ref(&IBig::from(ad.clone())));
        Rat::from_parts(n, ad.mul(&bd))
    }

    #[test]
    fn small_values_stay_inline() {
        assert!(Rat::zero().is_inline());
        assert!(Rat::one().is_inline());
        assert!(r(1, 3).is_inline());
        assert!(Rat::from_i64(i64::MAX).is_inline());
        assert!(Rat::from_i64(i64::MIN).is_inline());
        let sum = r(1, 3).add_ref(&r(1, 7));
        assert!(sum.is_inline());
        assert_eq!(sum, r(10, 21));
    }

    #[test]
    fn overflow_promotes_then_demotes() {
        let big = Rat::from_i64(i64::MAX);
        let two_pow_126 = big.add_ref(&Rat::one()).powi(2); // (2^63)^2
        assert!(!two_pow_126.is_inline());
        // Dividing back down re-enters the inline representation.
        let back = two_pow_126.div_ref(&two_pow_126.div_ref(&Rat::from_i64(4)));
        assert!(back.is_inline());
        assert_eq!(back, Rat::from_i64(4));
    }

    #[test]
    fn i64_min_edge_cases() {
        let min = Rat::from_i64(i64::MIN);
        let negated = min.neg_ref(); // 2^63 does not fit i64 → big
        assert!(!negated.is_inline());
        assert_eq!(negated.neg_ref(), min);
        assert!(negated.neg_ref().is_inline());
        // |i64::MIN| as a denominator fits u64.
        let recip = min.recip();
        assert!(recip.is_inline());
        assert_eq!(recip.mul_ref(&min), Rat::one());
    }

    #[test]
    fn add_near_i64_boundary_matches_big_path() {
        let cases = [
            (i64::MAX, 1, i64::MAX, 1),
            (i64::MAX, 2, i64::MAX, 3),
            (i64::MIN, 1, i64::MIN, 1),
            (i64::MAX, 1, 1, i64::MAX),
            (i64::MIN, 3, i64::MAX, 2),
        ];
        for (a, b, c, d) in cases {
            let x = r(a, b);
            let y = r(c, d);
            assert_eq!(
                x.add_ref(&y),
                big_add(&x, &y),
                "add {a}/{b} + {c}/{d} diverges from bignum path"
            );
        }
    }

    #[test]
    fn mixed_repr_arithmetic() {
        let small = r(3, 4);
        let big = Rat::from_i64(i64::MAX).powi(3); // far outside i64
        assert!(!big.is_inline());
        let s = small.add_ref(&big).sub_ref(&big);
        assert_eq!(s, small);
        assert!(s.is_inline());
        assert_eq!(big.mul_ref(&big.recip()), Rat::one());
        assert!(small < big);
        assert!(big.neg_ref() < small);
    }

    #[test]
    fn hash_eq_canonical_across_reprs() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let via_small = r(1, 2);
        let via_big = Rat::from_parts(IBig::from_i64(1), UBig::from_u64(2));
        assert!(via_big.is_inline(), "from_parts must demote");
        assert_eq!(via_small, via_big);
        let h = |v: &Rat| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&via_small), h(&via_big));
    }

    #[test]
    fn to_f64_inline_is_exact_for_dyadic() {
        assert_eq!(r(1, 4).to_f64(), 0.25);
        assert_eq!(r(-3, 8).to_f64(), -0.375);
        // 63-bit operands fall back to the high-precision path.
        let v = r(i64::MAX, 1 << 62);
        assert!((v.to_f64() - 2.0).abs() < 1e-15);
    }
}
