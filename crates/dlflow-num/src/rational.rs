//! Exact rational numbers over arbitrary-precision integers.

use crate::ibig::{IBig, Sign};
use crate::ubig::UBig;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number.
///
/// Invariants: the denominator is ≥ 1 and `gcd(|num|, den) = 1`
/// (fully reduced); the sign lives on the numerator.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rat {
    num: IBig,
    den: UBig,
}

impl Rat {
    /// The value 0.
    #[inline]
    pub fn zero() -> Self {
        Rat {
            num: IBig::zero(),
            den: UBig::one(),
        }
    }

    /// The value 1.
    #[inline]
    pub fn one() -> Self {
        Rat {
            num: IBig::one(),
            den: UBig::one(),
        }
    }

    /// Builds and normalizes `num / den`; panics when `den` is zero.
    pub fn new(num: IBig, den: IBig) -> Self {
        assert!(!den.is_zero(), "Rat::new zero denominator");
        let num = if den.is_negative() {
            num.neg_ref()
        } else {
            num
        };
        Rat::from_parts(num, den.into_magnitude())
    }

    /// Builds and normalizes a signed numerator over an unsigned denominator.
    pub fn from_parts(num: IBig, den: UBig) -> Self {
        assert!(!den.is_zero(), "Rat::from_parts zero denominator");
        if num.is_zero() {
            return Rat::zero();
        }
        let g = num.magnitude().gcd(&den);
        if g.is_one() {
            Rat { num, den }
        } else {
            let nm = num.magnitude().div_rem(&g).0;
            let dn = den.div_rem(&g).0;
            Rat {
                num: IBig::from_sign_mag(num.sign(), nm),
                den: dn,
            }
        }
    }

    /// Builds from an integer.
    pub fn from_i64(v: i64) -> Self {
        Rat {
            num: IBig::from_i64(v),
            den: UBig::one(),
        }
    }

    /// Builds from an integer ratio; panics when `den == 0`.
    pub fn from_ratio(num: i64, den: i64) -> Self {
        Rat::new(IBig::from_i64(num), IBig::from_i64(den))
    }

    /// Builds from an [`IBig`] integer.
    pub fn from_ibig(v: IBig) -> Self {
        Rat {
            num: v,
            den: UBig::one(),
        }
    }

    /// The (signed) numerator.
    #[inline]
    pub fn numer(&self) -> &IBig {
        &self.num
    }

    /// The (positive) denominator.
    #[inline]
    pub fn denom(&self) -> &UBig {
        &self.den
    }

    /// `true` iff the value is 0.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// `true` iff the value is strictly negative.
    #[inline]
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// `true` iff the value is strictly positive.
    #[inline]
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// `true` iff the value is an integer.
    #[inline]
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Sum.
    pub fn add_ref(&self, o: &Rat) -> Rat {
        // a/b + c/d = (a·d + c·b) / (b·d), normalized afterwards.
        let n = self
            .num
            .mul_ref(&IBig::from(o.den.clone()))
            .add_ref(&o.num.mul_ref(&IBig::from(self.den.clone())));
        Rat::from_parts(n, self.den.mul(&o.den))
    }

    /// Difference.
    pub fn sub_ref(&self, o: &Rat) -> Rat {
        self.add_ref(&o.neg_ref())
    }

    /// Product.
    pub fn mul_ref(&self, o: &Rat) -> Rat {
        Rat::from_parts(self.num.mul_ref(&o.num), self.den.mul(&o.den))
    }

    /// Quotient; panics when `o` is zero.
    pub fn div_ref(&self, o: &Rat) -> Rat {
        assert!(!o.is_zero(), "Rat::div_ref division by zero");
        let n = self.num.mul_ref(&IBig::from(o.den.clone()));
        let d = IBig::from(self.den.clone()).mul_ref(&o.num);
        Rat::new(n, d)
    }

    /// Negation.
    pub fn neg_ref(&self) -> Rat {
        Rat {
            num: self.num.neg_ref(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse; panics on zero.
    pub fn recip(&self) -> Rat {
        assert!(!self.is_zero(), "Rat::recip of zero");
        Rat::new(IBig::from(self.den.clone()), self.num.clone())
    }

    /// Absolute value.
    pub fn abs(&self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Exponentiation by a (possibly negative) integer power.
    pub fn powi(&self, exp: i32) -> Rat {
        if exp >= 0 {
            Rat::from_parts(self.num.pow(exp as u32), self.den.pow(exp as u32))
        } else {
            self.recip().powi(-exp)
        }
    }

    /// Midpoint `(self + other) / 2` — used by the milestone binary search.
    pub fn midpoint(&self, other: &Rat) -> Rat {
        self.add_ref(other).div_ref(&Rat::from_i64(2))
    }

    /// Minimum of two values by reference.
    pub fn min_ref<'a>(&'a self, other: &'a Rat) -> &'a Rat {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two values by reference.
    pub fn max_ref<'a>(&'a self, other: &'a Rat) -> &'a Rat {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Lossy conversion to `f64`, robust to magnitudes far outside the
    /// `f64` range of either numerator or denominator alone.
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let nbits = self.num.magnitude().bit_len() as i64;
        let dbits = self.den.bit_len() as i64;
        // Scale the numerator so the integer quotient has ~64 significant bits.
        let shift = dbits + 64 - nbits;
        let scaled = if shift >= 0 {
            self.num.magnitude().shl(shift as u64)
        } else {
            self.num.magnitude().shr((-shift) as u64)
        };
        let q = scaled.div_rem(&self.den).0;
        let mag = mul_pow2(q.to_f64(), -shift);
        if self.num.is_negative() {
            -mag
        } else {
            mag
        }
    }

    /// Builds the exact rational equal to a finite `f64`.
    ///
    /// Panics on NaN or infinity.
    pub fn from_f64(v: f64) -> Rat {
        assert!(v.is_finite(), "Rat::from_f64 of non-finite value");
        if v == 0.0 {
            return Rat::zero();
        }
        let bits = v.to_bits();
        let sign = if bits >> 63 == 1 {
            Sign::Minus
        } else {
            Sign::Plus
        };
        let exp_bits = ((bits >> 52) & 0x7FF) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (mantissa, exp) = if exp_bits == 0 {
            (frac, -1074i64) // subnormal
        } else {
            (frac | (1u64 << 52), exp_bits - 1075)
        };
        let m = IBig::from_sign_mag(sign, UBig::from_u64(mantissa));
        if exp >= 0 {
            Rat::from_parts(
                IBig::from_sign_mag(m.sign(), m.magnitude().shl(exp as u64)),
                UBig::one(),
            )
        } else {
            Rat::from_parts(m, UBig::one().shl((-exp) as u64))
        }
    }

    /// Parses `"a/b"` or `"a"` (decimal integers, optional sign).
    pub fn from_str_ratio(s: &str) -> Result<Rat, crate::ubig::ParseUBigError> {
        match s.split_once('/') {
            Some((n, d)) => Ok(Rat::new(
                IBig::from_decimal_str(n.trim())?,
                IBig::from_decimal_str(d.trim())?,
            )),
            None => Ok(Rat::from_ibig(IBig::from_decimal_str(s.trim())?)),
        }
    }

    /// Floor (greatest integer ≤ self) as an [`IBig`].
    pub fn floor(&self) -> IBig {
        let (q, r) = self.num.div_rem(&IBig::from(self.den.clone()));
        if self.num.is_negative() && !r.is_zero() {
            q.sub_ref(&IBig::one())
        } else {
            q
        }
    }

    /// Ceiling (least integer ≥ self) as an [`IBig`].
    pub fn ceil(&self) -> IBig {
        self.neg_ref().floor().neg_ref()
    }
}

/// Multiplies by 2^e in steps that keep every intermediate factor a
/// *normal* f64, so precision is not lost to subnormal intermediates.
fn mul_pow2(mut x: f64, mut e: i64) -> f64 {
    const STEP: i64 = 900; // comfortably below the f64 exponent range
    while e > STEP {
        x *= 2f64.powi(STEP as i32);
        e -= STEP;
    }
    while e < -STEP {
        x *= 2f64.powi(-STEP as i32);
        e += STEP;
    }
    x * 2f64.powi(e as i32)
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  ⇔  a·d ? c·b   (b, d > 0)
        let lhs = self.num.mul_ref(&IBig::from(other.den.clone()));
        let rhs = other.num.mul_ref(&IBig::from(self.den.clone()));
        lhs.cmp(&rhs)
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::zero()
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Self {
        Rat::from_i64(v)
    }
}

impl From<IBig> for Rat {
    fn from(v: IBig) -> Self {
        Rat::from_ibig(v)
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        self.neg_ref()
    }
}

impl Neg for &Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        self.neg_ref()
    }
}

macro_rules! forward_rat_binop {
    ($trait:ident, $method:ident, $inner:ident) => {
        impl $trait for Rat {
            type Output = Rat;
            fn $method(self, rhs: Rat) -> Rat {
                self.$inner(&rhs)
            }
        }
        impl $trait<&Rat> for Rat {
            type Output = Rat;
            fn $method(self, rhs: &Rat) -> Rat {
                self.$inner(rhs)
            }
        }
        impl $trait<Rat> for &Rat {
            type Output = Rat;
            fn $method(self, rhs: Rat) -> Rat {
                self.$inner(&rhs)
            }
        }
        impl $trait for &Rat {
            type Output = Rat;
            fn $method(self, rhs: &Rat) -> Rat {
                self.$inner(rhs)
            }
        }
    };
}

forward_rat_binop!(Add, add, add_ref);
forward_rat_binop!(Sub, sub, sub_ref);
forward_rat_binop!(Mul, mul, mul_ref);
forward_rat_binop!(Div, div, div_ref);

impl AddAssign<&Rat> for Rat {
    fn add_assign(&mut self, rhs: &Rat) {
        *self = self.add_ref(rhs);
    }
}

impl SubAssign<&Rat> for Rat {
    fn sub_assign(&mut self, rhs: &Rat) {
        *self = self.sub_ref(rhs);
    }
}

impl MulAssign<&Rat> for Rat {
    fn mul_assign(&mut self, rhs: &Rat) {
        *self = self.mul_ref(rhs);
    }
}

impl DivAssign<&Rat> for Rat {
    fn div_assign(&mut self, rhs: &Rat) {
        *self = self.div_ref(rhs);
    }
}

// Serialization: `Rat` round-trips losslessly through its `Display` form
// (`"n/d"`) and `Rat::from_str_ratio`, so callers that need serde support
// can wrap it in a newtype with string-based impls. The build environment
// has no registry access, so serde itself is not a dependency here.

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rat {
        Rat::from_ratio(n, d)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, 4), r(1, -2));
        assert_eq!(r(0, 5), Rat::zero());
        assert_eq!(r(6, 3), Rat::from_i64(2));
        assert!(r(1, -2).is_negative());
        assert_eq!(r(-3, -6), r(1, 2));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn field_ops() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), Rat::from_i64(2));
        assert_eq!(-r(1, 2), r(-1, 2));
        assert_eq!(r(3, 7).recip(), r(7, 3));
    }

    #[test]
    fn comparisons() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(2, 4) == r(1, 2));
        assert!(r(7, 2) > Rat::from_i64(3));
        assert!(Rat::zero() < r(1, 1_000_000));
    }

    #[test]
    fn powi_and_midpoint() {
        assert_eq!(r(2, 3).powi(2), r(4, 9));
        assert_eq!(r(2, 3).powi(-1), r(3, 2));
        assert_eq!(r(2, 3).powi(0), Rat::one());
        assert_eq!(r(1, 2).midpoint(&r(1, 4)), r(3, 8));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor(), IBig::from_i64(3));
        assert_eq!(r(7, 2).ceil(), IBig::from_i64(4));
        assert_eq!(r(-7, 2).floor(), IBig::from_i64(-4));
        assert_eq!(r(-7, 2).ceil(), IBig::from_i64(-3));
        assert_eq!(Rat::from_i64(5).floor(), IBig::from_i64(5));
        assert_eq!(Rat::from_i64(5).ceil(), IBig::from_i64(5));
    }

    #[test]
    fn f64_roundtrip_exact() {
        for v in [
            0.0,
            1.0,
            -1.5,
            0.1,
            3.25,
            -1024.0,
            1e-300,
            1e300,
            f64::MIN_POSITIVE,
        ] {
            let rat = Rat::from_f64(v);
            assert_eq!(rat.to_f64(), v, "roundtrip {v}");
        }
    }

    #[test]
    fn from_f64_known_values() {
        assert_eq!(Rat::from_f64(0.5), r(1, 2));
        assert_eq!(Rat::from_f64(0.25), r(1, 4));
        assert_eq!(Rat::from_f64(-3.0), Rat::from_i64(-3));
    }

    #[test]
    fn to_f64_huge_magnitudes() {
        // num and den both overflow f64 individually; the ratio must not.
        let big = IBig::from_decimal_str(&("1".to_owned() + &"0".repeat(400))).unwrap();
        let x = Rat::new(big.mul_ref(&IBig::from_i64(3)), big.clone());
        assert!((x.to_f64() - 3.0).abs() < 1e-12);
        let y = Rat::new(big.clone(), big.mul_ref(&IBig::from_i64(4)));
        assert!((y.to_f64() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn parse_ratio() {
        assert_eq!(Rat::from_str_ratio("3/4").unwrap(), r(3, 4));
        assert_eq!(Rat::from_str_ratio("-3/4").unwrap(), r(-3, 4));
        assert_eq!(Rat::from_str_ratio("5").unwrap(), Rat::from_i64(5));
        assert_eq!(Rat::from_str_ratio(" 1 / 2 ").unwrap(), r(1, 2));
        assert!(Rat::from_str_ratio("x/2").is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(r(1, 2).to_string(), "1/2");
        assert_eq!(Rat::from_i64(-7).to_string(), "-7");
        assert_eq!(Rat::zero().to_string(), "0");
    }

    #[test]
    fn min_max_ref() {
        let a = r(1, 3);
        let b = r(1, 2);
        assert_eq!(a.min_ref(&b), &a);
        assert_eq!(a.max_ref(&b), &b);
    }
}
