//! The [`Scalar`] ordered-field abstraction.
//!
//! The LP solver and the scheduling algorithms are generic over the scalar
//! type: `f64` for fast approximate sweeps, [`Rat`] for exact optimality
//! (the milestone binary search of the paper requires exact arithmetic to
//! return *the* optimum rather than an approximation).

use crate::rational::Rat;
use std::cmp::Ordering;
use std::fmt::{Debug, Display};

/// An ordered field with enough structure for simplex pivoting.
///
/// Implementations must be totally ordered on the values the algorithms
/// produce (no NaNs). [`Scalar::tolerance`] returns the comparison slack:
/// zero for exact types, a small epsilon for floating point.
pub trait Scalar: Clone + PartialEq + PartialOrd + Debug + Display + Send + Sync + 'static {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Embeds a signed integer.
    fn from_i64(v: i64) -> Self;
    /// Embeds an integer ratio (`den != 0`).
    fn from_ratio(num: i64, den: i64) -> Self;
    /// Sum by reference.
    fn add(&self, o: &Self) -> Self;
    /// Difference by reference.
    fn sub(&self, o: &Self) -> Self;
    /// Product by reference.
    fn mul(&self, o: &Self) -> Self;
    /// Quotient by reference (`o` nonzero).
    fn div(&self, o: &Self) -> Self;
    /// Negation.
    fn neg(&self) -> Self;
    /// Absolute value.
    fn abs(&self) -> Self;
    /// Comparison slack: 0 for exact types, an epsilon for floats.
    fn tolerance() -> Self;
    /// Lossy conversion to `f64` for reporting.
    fn to_f64(&self) -> f64;
    /// Best-effort embedding of an `f64` (exact for [`Rat`]).
    fn from_f64_approx(v: f64) -> Self;
    /// Total-order comparison; panics on incomparable values (float NaN).
    fn cmp_total(&self, o: &Self) -> Ordering {
        self.partial_cmp(o)
            .expect("Scalar::cmp_total: incomparable values")
    }

    /// Multiplicative inverse.
    fn recip(&self) -> Self {
        Self::one().div(self)
    }

    /// `|self| <= tolerance` — treat as zero.
    fn is_negligible(&self) -> bool {
        self.abs() <= Self::tolerance()
    }

    /// `self < o − tolerance` — strictly less, beyond the slack.
    fn lt_tol(&self, o: &Self) -> bool {
        self.add(&Self::tolerance()) < *o
    }

    /// `self > o + tolerance` — strictly greater, beyond the slack.
    fn gt_tol(&self, o: &Self) -> bool {
        *self > o.add(&Self::tolerance())
    }

    /// `self <= o + tolerance`.
    fn le_tol(&self, o: &Self) -> bool {
        !self.gt_tol(o)
    }

    /// `self >= o − tolerance`.
    fn ge_tol(&self, o: &Self) -> bool {
        !self.lt_tol(o)
    }

    /// Strictly positive beyond the slack.
    fn is_positive_tol(&self) -> bool {
        self.gt_tol(&Self::zero())
    }

    /// Strictly negative beyond the slack.
    fn is_negative_tol(&self) -> bool {
        self.lt_tol(&Self::zero())
    }

    /// Minimum of two values.
    fn min_val(a: Self, b: Self) -> Self {
        if a.cmp_total(&b) == Ordering::Greater {
            b
        } else {
            a
        }
    }

    /// Maximum of two values.
    fn max_val(a: Self, b: Self) -> Self {
        if a.cmp_total(&b) == Ordering::Less {
            b
        } else {
            a
        }
    }
}

impl Scalar for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn from_i64(v: i64) -> Self {
        v as f64
    }
    fn from_ratio(num: i64, den: i64) -> Self {
        assert!(den != 0, "from_ratio zero denominator");
        num as f64 / den as f64
    }
    fn add(&self, o: &Self) -> Self {
        self + o
    }
    fn sub(&self, o: &Self) -> Self {
        self - o
    }
    fn mul(&self, o: &Self) -> Self {
        self * o
    }
    fn div(&self, o: &Self) -> Self {
        self / o
    }
    fn neg(&self) -> Self {
        -self
    }
    fn abs(&self) -> Self {
        f64::abs(*self)
    }
    fn tolerance() -> Self {
        1e-9
    }
    fn to_f64(&self) -> f64 {
        *self
    }
    fn from_f64_approx(v: f64) -> Self {
        v
    }
}

impl Scalar for Rat {
    fn zero() -> Self {
        Rat::zero()
    }
    fn one() -> Self {
        Rat::one()
    }
    fn from_i64(v: i64) -> Self {
        Rat::from_i64(v)
    }
    fn from_ratio(num: i64, den: i64) -> Self {
        Rat::from_ratio(num, den)
    }
    fn add(&self, o: &Self) -> Self {
        self.add_ref(o)
    }
    fn sub(&self, o: &Self) -> Self {
        self.sub_ref(o)
    }
    fn mul(&self, o: &Self) -> Self {
        self.mul_ref(o)
    }
    fn div(&self, o: &Self) -> Self {
        self.div_ref(o)
    }
    fn neg(&self) -> Self {
        self.neg_ref()
    }
    fn abs(&self) -> Self {
        Rat::abs(self)
    }
    fn tolerance() -> Self {
        Rat::zero()
    }
    fn to_f64(&self) -> f64 {
        Rat::to_f64(self)
    }
    fn from_f64_approx(v: f64) -> Self {
        Rat::from_f64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_field<S: Scalar>() {
        let two = S::from_i64(2);
        let three = S::from_i64(3);
        let five = S::from_i64(5);
        assert_eq!(two.add(&three), five);
        assert_eq!(five.sub(&three), two);
        assert_eq!(two.mul(&three), S::from_i64(6));
        assert_eq!(S::from_i64(6).div(&three), two);
        assert_eq!(two.neg().abs(), two);
        assert_eq!(S::from_ratio(1, 2).add(&S::from_ratio(1, 2)), S::one());
        assert_eq!(S::from_ratio(-4, 2), S::from_i64(-2));
        assert!(S::zero() < S::one());
        assert_eq!(two.recip().mul(&two), S::one());
    }

    #[test]
    fn f64_field_laws() {
        exercise_field::<f64>();
    }

    #[test]
    fn rat_field_laws() {
        exercise_field::<Rat>();
    }

    #[test]
    fn tolerance_behaviour() {
        // Exact type: nothing nonzero is negligible.
        assert!(Rat::from_ratio(1, 1_000_000_000_000).is_positive_tol());
        assert!(!Rat::from_ratio(1, i64::MAX).is_negligible());
        assert!(Rat::zero().is_negligible());
        // Float: tiny values are negligible.
        assert!(1e-12f64.is_negligible());
        assert!(!1e-3f64.is_negligible());
        assert!(1e-3f64.is_positive_tol());
        assert!((-1e-3f64).is_negative_tol());
        assert!(!(1e-12f64).is_positive_tol());
    }

    #[test]
    fn tol_comparisons() {
        assert!(1.0f64.lt_tol(&2.0));
        assert!(!1.0f64.lt_tol(&(1.0 + 1e-12)));
        assert!(2.0f64.gt_tol(&1.0));
        assert!(1.0f64.le_tol(&(1.0 - 1e-12)));
        assert!(Rat::from_i64(1).lt_tol(&Rat::from_ratio(1_000_000_001, 1_000_000_000)));
    }

    #[test]
    fn min_max_val() {
        assert_eq!(f64::min_val(2.0, 1.0), 1.0);
        assert_eq!(f64::max_val(2.0, 1.0), 2.0);
        assert_eq!(
            Rat::min_val(Rat::from_i64(2), Rat::from_i64(1)),
            Rat::from_i64(1)
        );
    }

    #[test]
    fn f64_approx_embedding() {
        assert_eq!(Rat::from_f64_approx(0.5), Rat::from_ratio(1, 2));
        assert_eq!(f64::from_f64_approx(0.5), 0.5);
        assert!((Rat::from_ratio(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
    }
}
