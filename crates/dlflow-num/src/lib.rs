//! # dlflow-num — exact arithmetic substrate
//!
//! Arbitrary-precision unsigned/signed integers and exact rationals,
//! written from scratch (no external bignum dependency is available in the
//! offline crate set). This crate exists because the milestone binary
//! search of Legrand–Su–Vivien (Theorem 2) returns the *exact* optimal
//! maximum weighted flow only if the underlying linear programs are solved
//! exactly; floating point would turn the claimed optimum into an
//! approximation.
//!
//! * [`UBig`] — unsigned magnitude: schoolbook/Karatsuba multiplication,
//!   Knuth Algorithm D division, binary GCD, decimal I/O.
//! * [`IBig`] — sign–magnitude signed integer.
//! * [`Rat`] — normalized rational; a total-order field.
//! * [`Scalar`] — the ordered-field trait shared by `f64` and [`Rat`],
//!   used by `dlflow-lp` and `dlflow-core` to stay generic over exact vs
//!   approximate arithmetic.
//!
//! ## Example
//!
//! ```
//! use dlflow_num::{Rat, Scalar};
//!
//! let third = Rat::from_ratio(1, 3);
//! let sum = third.add(&third).add(&third);
//! assert_eq!(sum, Rat::one()); // exact, unlike 0.1 + 0.2 in f64
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // indexed loops over parallel limb arrays are clearer here

pub mod ibig;
pub mod rational;
pub mod traits;
pub mod ubig;

pub use ibig::{IBig, Sign};
pub use rational::Rat;
pub use traits::Scalar;
pub use ubig::{ParseUBigError, UBig};
