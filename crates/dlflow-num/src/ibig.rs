//! Signed arbitrary-precision integers (sign–magnitude over [`UBig`]).

use crate::ubig::{ParseUBigError, UBig};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Sign of an [`IBig`]. Zero is always [`Sign::Plus`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Sign {
    /// Non-negative.
    Plus,
    /// Strictly negative.
    Minus,
}

impl Sign {
    /// The opposite sign.
    #[inline]
    pub fn flip(self) -> Sign {
        match self {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
        }
    }

    /// Product-of-signs rule.
    #[inline]
    #[allow(clippy::should_implement_trait)] // deliberate: Sign is Copy and this is not an ops overload
    pub fn mul(self, other: Sign) -> Sign {
        if self == other {
            Sign::Plus
        } else {
            Sign::Minus
        }
    }
}

/// A signed arbitrary-precision integer.
///
/// Invariant: when the magnitude is zero the sign is [`Sign::Plus`], so
/// equality is structural.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IBig {
    sign: Sign,
    mag: UBig,
}

impl IBig {
    /// The value 0.
    #[inline]
    pub fn zero() -> Self {
        IBig {
            sign: Sign::Plus,
            mag: UBig::zero(),
        }
    }

    /// The value 1.
    #[inline]
    pub fn one() -> Self {
        IBig {
            sign: Sign::Plus,
            mag: UBig::one(),
        }
    }

    /// The value −1.
    #[inline]
    pub fn neg_one() -> Self {
        IBig {
            sign: Sign::Minus,
            mag: UBig::one(),
        }
    }

    /// Builds from sign and magnitude, normalizing the sign of zero.
    pub fn from_sign_mag(sign: Sign, mag: UBig) -> Self {
        if mag.is_zero() {
            IBig::zero()
        } else {
            IBig { sign, mag }
        }
    }

    /// Builds from an `i64`.
    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            IBig {
                sign: Sign::Plus,
                mag: UBig::from_u64(v as u64),
            }
        } else {
            IBig {
                sign: Sign::Minus,
                mag: UBig::from_u64(v.unsigned_abs()),
            }
        }
    }

    /// Builds from an `i128`.
    pub fn from_i128(v: i128) -> Self {
        if v >= 0 {
            IBig {
                sign: Sign::Plus,
                mag: UBig::from_u128(v as u128),
            }
        } else {
            IBig {
                sign: Sign::Minus,
                mag: UBig::from_u128(v.unsigned_abs()),
            }
        }
    }

    /// The sign.
    #[inline]
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude.
    #[inline]
    pub fn magnitude(&self) -> &UBig {
        &self.mag
    }

    /// Consumes self, returning the magnitude.
    #[inline]
    pub fn into_magnitude(self) -> UBig {
        self.mag
    }

    /// `true` iff the value is 0.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }

    /// `true` iff the value is 1.
    #[inline]
    pub fn is_one(&self) -> bool {
        self.sign == Sign::Plus && self.mag.is_one()
    }

    /// `true` iff the value is strictly negative.
    #[inline]
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// `true` iff the value is strictly positive.
    #[inline]
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Plus && !self.mag.is_zero()
    }

    /// Absolute value.
    pub fn abs(&self) -> IBig {
        IBig {
            sign: Sign::Plus,
            mag: self.mag.clone(),
        }
    }

    /// Sum.
    pub fn add_ref(&self, other: &IBig) -> IBig {
        if self.sign == other.sign {
            IBig::from_sign_mag(self.sign, self.mag.add(&other.mag))
        } else {
            match self.mag.cmp(&other.mag) {
                Ordering::Equal => IBig::zero(),
                Ordering::Greater => IBig::from_sign_mag(self.sign, self.mag.sub(&other.mag)),
                Ordering::Less => IBig::from_sign_mag(other.sign, other.mag.sub(&self.mag)),
            }
        }
    }

    /// Difference.
    pub fn sub_ref(&self, other: &IBig) -> IBig {
        self.add_ref(&other.neg_ref())
    }

    /// Product.
    pub fn mul_ref(&self, other: &IBig) -> IBig {
        IBig::from_sign_mag(self.sign.mul(other.sign), self.mag.mul(&other.mag))
    }

    /// Negation.
    pub fn neg_ref(&self) -> IBig {
        IBig::from_sign_mag(self.sign.flip(), self.mag.clone())
    }

    /// Truncated division (quotient rounds toward zero) with remainder:
    /// `self = q * other + r`, `|r| < |other|`, `sign(r) ∈ {0, sign(self)}`.
    pub fn div_rem(&self, other: &IBig) -> (IBig, IBig) {
        let (q, r) = self.mag.div_rem(&other.mag);
        (
            IBig::from_sign_mag(self.sign.mul(other.sign), q),
            IBig::from_sign_mag(self.sign, r),
        )
    }

    /// Exact division; panics when `other` does not divide `self`.
    pub fn div_exact(&self, other: &IBig) -> IBig {
        let (q, r) = self.div_rem(other);
        assert!(r.is_zero(), "IBig::div_exact: inexact division");
        q
    }

    /// GCD of magnitudes (always non-negative).
    pub fn gcd(&self, other: &IBig) -> UBig {
        self.mag.gcd(&other.mag)
    }

    /// Exponentiation by squaring.
    pub fn pow(&self, exp: u32) -> IBig {
        let sign = if self.sign == Sign::Minus && exp % 2 == 1 {
            Sign::Minus
        } else {
            Sign::Plus
        };
        IBig::from_sign_mag(sign, self.mag.pow(exp))
    }

    /// Converts to `i64` if it fits.
    pub fn to_i64(&self) -> Option<i64> {
        let m = self.mag.to_u64()?;
        match self.sign {
            Sign::Plus => i64::try_from(m).ok(),
            Sign::Minus => {
                if m <= i64::MAX as u64 + 1 {
                    Some((m as i64).wrapping_neg())
                } else {
                    None
                }
            }
        }
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        let m = self.mag.to_f64();
        match self.sign {
            Sign::Plus => m,
            Sign::Minus => -m,
        }
    }

    /// Parses a decimal string with optional leading `-` or `+`.
    pub fn from_decimal_str(s: &str) -> Result<IBig, ParseUBigError> {
        let (sign, digits) = match s.as_bytes().first() {
            Some(b'-') => (Sign::Minus, &s[1..]),
            Some(b'+') => (Sign::Plus, &s[1..]),
            _ => (Sign::Plus, s),
        };
        Ok(IBig::from_sign_mag(sign, UBig::from_decimal_str(digits)?))
    }
}

impl Ord for IBig {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Plus, Sign::Minus) => Ordering::Greater,
            (Sign::Minus, Sign::Plus) => Ordering::Less,
            (Sign::Plus, Sign::Plus) => self.mag.cmp(&other.mag),
            (Sign::Minus, Sign::Minus) => other.mag.cmp(&self.mag),
        }
    }
}

impl PartialOrd for IBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for IBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Minus {
            write!(f, "-")?;
        }
        write!(f, "{}", self.mag)
    }
}

impl fmt::Debug for IBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<i64> for IBig {
    fn from(v: i64) -> Self {
        IBig::from_i64(v)
    }
}

impl From<u64> for IBig {
    fn from(v: u64) -> Self {
        IBig::from_sign_mag(Sign::Plus, UBig::from_u64(v))
    }
}

impl From<UBig> for IBig {
    fn from(mag: UBig) -> Self {
        IBig::from_sign_mag(Sign::Plus, mag)
    }
}

impl std::str::FromStr for IBig {
    type Err = ParseUBigError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        IBig::from_decimal_str(s)
    }
}

impl Neg for IBig {
    type Output = IBig;
    fn neg(self) -> IBig {
        self.neg_ref()
    }
}

impl Neg for &IBig {
    type Output = IBig;
    fn neg(self) -> IBig {
        self.neg_ref()
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $inner:ident) => {
        impl $trait for IBig {
            type Output = IBig;
            fn $method(self, rhs: IBig) -> IBig {
                self.$inner(&rhs)
            }
        }
        impl $trait<&IBig> for IBig {
            type Output = IBig;
            fn $method(self, rhs: &IBig) -> IBig {
                self.$inner(rhs)
            }
        }
        impl $trait<IBig> for &IBig {
            type Output = IBig;
            fn $method(self, rhs: IBig) -> IBig {
                self.$inner(&rhs)
            }
        }
        impl $trait for &IBig {
            type Output = IBig;
            fn $method(self, rhs: &IBig) -> IBig {
                self.$inner(rhs)
            }
        }
    };
}

forward_binop!(Add, add, add_ref);
forward_binop!(Sub, sub, sub_ref);
forward_binop!(Mul, mul, mul_ref);

impl AddAssign<&IBig> for IBig {
    fn add_assign(&mut self, rhs: &IBig) {
        *self = self.add_ref(rhs);
    }
}

impl SubAssign<&IBig> for IBig {
    fn sub_assign(&mut self, rhs: &IBig) {
        *self = self.sub_ref(rhs);
    }
}

impl MulAssign<&IBig> for IBig {
    fn mul_assign(&mut self, rhs: &IBig) {
        *self = self.mul_ref(rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ib(v: i64) -> IBig {
        IBig::from_i64(v)
    }

    #[test]
    fn zero_sign_normalized() {
        let z = IBig::from_sign_mag(Sign::Minus, UBig::zero());
        assert_eq!(z, IBig::zero());
        assert_eq!(z.sign(), Sign::Plus);
        assert_eq!(ib(5).sub_ref(&ib(5)), IBig::zero());
    }

    #[test]
    fn add_all_sign_combinations() {
        assert_eq!(ib(3) + ib(4), ib(7));
        assert_eq!(ib(3) + ib(-4), ib(-1));
        assert_eq!(ib(-3) + ib(4), ib(1));
        assert_eq!(ib(-3) + ib(-4), ib(-7));
        assert_eq!(ib(4) + ib(-3), ib(1));
        assert_eq!(ib(-4) + ib(3), ib(-1));
    }

    #[test]
    fn sub_and_neg() {
        assert_eq!(ib(3) - ib(10), ib(-7));
        assert_eq!(-ib(3), ib(-3));
        assert_eq!(-IBig::zero(), IBig::zero());
        assert_eq!(ib(-5).abs(), ib(5));
    }

    #[test]
    fn mul_signs() {
        assert_eq!(ib(3) * ib(4), ib(12));
        assert_eq!(ib(-3) * ib(4), ib(-12));
        assert_eq!(ib(3) * ib(-4), ib(-12));
        assert_eq!(ib(-3) * ib(-4), ib(12));
        assert_eq!(ib(0) * ib(-4), ib(0));
    }

    #[test]
    fn div_rem_truncates_toward_zero() {
        for (a, b) in [(7i64, 2i64), (-7, 2), (7, -2), (-7, -2)] {
            let (q, r) = ib(a).div_rem(&ib(b));
            assert_eq!(q, ib(a / b), "q for {a}/{b}");
            assert_eq!(r, ib(a % b), "r for {a}%{b}");
        }
    }

    #[test]
    fn div_exact_works_and_panics() {
        assert_eq!(ib(12).div_exact(&ib(-4)), ib(-3));
        let caught = std::panic::catch_unwind(|| ib(13).div_exact(&ib(4)));
        assert!(caught.is_err());
    }

    #[test]
    fn ordering_across_signs() {
        assert!(ib(-2) < ib(1));
        assert!(ib(-5) < ib(-2));
        assert!(ib(3) > ib(2));
        assert!(ib(0) > ib(-1));
    }

    #[test]
    fn i64_roundtrip_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(ib(v).to_i64(), Some(v));
        }
        let too_big = IBig::from_i64(i64::MAX) + IBig::one();
        assert_eq!(too_big.to_i64(), None);
        let min_exact = IBig::from_i64(i64::MIN);
        assert_eq!(min_exact.to_i64(), Some(i64::MIN));
        assert_eq!((min_exact - IBig::one()).to_i64(), None);
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in [
            "0",
            "-1",
            "12345678901234567890123",
            "-999999999999999999999",
        ] {
            let v = IBig::from_decimal_str(s).unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert_eq!(IBig::from_decimal_str("+42").unwrap(), ib(42));
        assert!(IBig::from_decimal_str("--1").is_err());
    }

    #[test]
    fn pow_signs() {
        assert_eq!(ib(-2).pow(3), ib(-8));
        assert_eq!(ib(-2).pow(4), ib(16));
        assert_eq!(ib(5).pow(0), ib(1));
    }

    #[test]
    fn to_f64_signed() {
        assert_eq!(ib(-12345).to_f64(), -12345.0);
        assert_eq!(ib(0).to_f64(), 0.0);
    }
}
