//! Property-based integration tests: the paper's invariants on randomly
//! generated exact-rational instances.

use dlflow::core::instance::{Cost, Instance, Job};
use dlflow::core::makespan::{makespan_lower_bound, min_makespan};
use dlflow::core::maxflow::{feasible_at, min_max_weighted_flow_divisible};
use dlflow::core::validate::validate;
use dlflow::num::Rat;
use proptest::prelude::*;

/// Small random exact instance: 1–4 jobs, 1–3 machines, integer data.
fn arb_instance() -> impl Strategy<Value = Instance<Rat>> {
    (1usize..=4, 1usize..=3).prop_flat_map(|(n, m)| {
        let jobs = proptest::collection::vec((0i64..=6, 1i64..=4), n..=n);
        let costs = proptest::collection::vec(
            proptest::collection::vec(proptest::option::weighted(0.8, 1i64..=8), n..=n),
            m..=m,
        );
        (jobs, costs).prop_map(move |(jobs, costs)| {
            let jobs: Vec<Job<Rat>> = jobs
                .into_iter()
                .enumerate()
                .map(|(j, (r, w))| Job {
                    release: Rat::from_i64(r),
                    weight: Rat::from_i64(w),
                    name: format!("J{j}"),
                })
                .collect();
            let mut cost: Vec<Vec<Cost<Rat>>> = costs
                .into_iter()
                .map(|row| {
                    row.into_iter()
                        .map(|c| c.map_or(Cost::Infinite, |v| Cost::Finite(Rat::from_i64(v))))
                        .collect()
                })
                .collect();
            // Ensure each job is placeable: force machine 0 when needed.
            for j in 0..jobs.len() {
                if !cost.iter().any(|row: &Vec<Cost<Rat>>| row[j].is_finite()) {
                    cost[0][j] = Cost::Finite(Rat::from_i64(3));
                }
            }
            Instance::new(jobs, cost).expect("constructed instance is valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn makespan_schedule_is_valid_and_tight(inst in arb_instance()) {
        let out = min_makespan(&inst);
        prop_assert!(validate(&inst, &out.schedule).is_ok());
        prop_assert_eq!(out.schedule.makespan(), out.makespan.clone());
        prop_assert!(makespan_lower_bound(&inst) <= out.makespan);
    }

    #[test]
    fn maxflow_divisible_optimum_is_achieved_and_minimal(inst in arb_instance()) {
        let out = min_max_weighted_flow_divisible(&inst);
        prop_assert!(validate(&inst, &out.schedule).is_ok());
        prop_assert_eq!(out.schedule.max_weighted_flow(&inst), out.optimum.clone());
        // Minimality: 0.1% below the optimum must be infeasible.
        let below = out.optimum.mul_ref(&Rat::from_ratio(999, 1000));
        if below.is_positive() {
            prop_assert!(!feasible_at(&inst, &below, false));
        }
    }

    #[test]
    fn makespan_bounds_maxflow_from_below_per_job(inst in arb_instance()) {
        // For each job, F* ≥ w_j · (time to fully process j if alone
        // starting at r_j with ALL machines) is NOT generally valid under
        // contention — but F* ≥ w_j · (harmonic processing time of j) IS,
        // because even alone j cannot finish faster.
        let out = min_max_weighted_flow_divisible(&inst);
        for j in 0..inst.n_jobs() {
            let mut rate = Rat::zero();
            let mut zero_cost = false;
            for i in 0..inst.n_machines() {
                if let Some(c) = inst.cost(i, j).finite() {
                    if c.is_zero() { zero_cost = true; break; }
                    rate = rate.add_ref(&c.recip());
                }
            }
            if zero_cost || rate.is_zero() {
                continue;
            }
            let min_time = rate.recip();
            let lb = inst.job(j).weight.mul_ref(&min_time);
            prop_assert!(out.optimum >= lb, "job {j}: F*={} < lb={}", out.optimum, lb);
        }
    }
}
