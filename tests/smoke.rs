//! End-to-end smoke test: the Quickstart example must run to completion.
//!
//! Cargo builds example binaries before running integration tests but
//! exposes no `CARGO_BIN_EXE_*`-style variable for them, so the test
//! locates `target/<profile>/examples/quickstart` relative to its own
//! executable (`target/<profile>/deps/smoke-*`). This also exercises the
//! example's internal `assert!` that the divisible ≤ preemptive ≤ baseline
//! optimum chain holds.

use std::path::PathBuf;
use std::process::Command;

fn example_binary(name: &str) -> PathBuf {
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // deps/
    path.pop(); // <profile>/
    path.push("examples");
    path.push(format!("{name}{}", std::env::consts::EXE_SUFFIX));
    path
}

#[test]
fn quickstart_example_runs_to_completion() {
    let bin = example_binary("quickstart");
    assert!(
        bin.exists(),
        "example binary missing at {} — cargo builds examples before \
         running integration tests, so this indicates a target-layout change",
        bin.display()
    );
    let out = Command::new(&bin).output().expect("example runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "quickstart failed:\n{stdout}\n{stderr}"
    );
    assert!(
        stdout.contains("chain verified"),
        "quickstart did not reach its final verification line:\n{stdout}"
    );
    assert!(
        stdout.contains("optimal F* = 8"),
        "expected the exact optimum F* = 8 in:\n{stdout}"
    );
}
