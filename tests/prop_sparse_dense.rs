//! Property tests: the sparse revised simplex (`dlflow_lp::solve`) against
//! the seed dense two-phase tableau (`dlflow_lp::solve_dense`) on
//! randomized LPs, and warm-started solves against cold solves.
//!
//! Over `Rat` the agreement is **exact**: both solvers must report the
//! same status, and on optimal instances the identical optimal objective
//! (the optimum of an LP is unique even when the optimal vertex is not).

use dlflow_lp::{solve, solve_dense, solve_warm, LinExpr, LpProblem, LpStatus, Rel, Sense};
use dlflow_num::Rat;
use proptest::prelude::*;

fn rel_of(code: u8) -> Rel {
    match code % 4 {
        0 | 1 => Rel::Le, // weight Le: keeps a healthy share of feasible LPs
        2 => Rel::Ge,
        _ => Rel::Eq,
    }
}

/// Random LP over integer data with a mix of `≤`/`≥`/`=` rows and a
/// bounding box, so all three statuses occur but Unbounded stays rare.
fn build_rat_lp(
    n: usize,
    sense: Sense,
    c: &[i64],
    rows: &[(Vec<i64>, u8, i64)],
    cap: i64,
) -> LpProblem<Rat> {
    let mut lp: LpProblem<Rat> = LpProblem::new(sense);
    let vs: Vec<_> = (0..n).map(|i| lp.add_var(format!("x{i}"))).collect();
    lp.set_objective(LinExpr::from_iter(
        vs.iter().zip(c).map(|(&v, &ci)| (v, Rat::from_i64(ci))),
    ));
    for (row, rel, rhs) in rows {
        lp.add_constraint(
            LinExpr::from_iter(vs.iter().zip(row).map(|(&v, &a)| (v, Rat::from_i64(a)))),
            rel_of(*rel),
            Rat::from_i64(*rhs),
        );
    }
    lp.add_constraint(
        LinExpr::from_iter(vs.iter().map(|&v| (v, Rat::one()))),
        Rel::Le,
        Rat::from_i64(cap),
    );
    lp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn sparse_agrees_with_dense_exactly(
        n in 1usize..5,
        m in 1usize..5,
        maximize in any::<bool>(),
        seed_c in proptest::collection::vec(-5i64..=5, 4),
        seed_a in proptest::collection::vec(-4i64..=6, 16),
        seed_rel in proptest::collection::vec(0u8..=3, 4),
        seed_b in proptest::collection::vec(-3i64..=10, 4),
        cap in 1i64..=25,
    ) {
        let sense = if maximize { Sense::Maximize } else { Sense::Minimize };
        let rows: Vec<(Vec<i64>, u8, i64)> = (0..m)
            .map(|i| {
                (
                    (0..n).map(|j| seed_a[(i * 4 + j) % 16]).collect(),
                    seed_rel[i % 4],
                    seed_b[i % 4],
                )
            })
            .collect();
        let lp = build_rat_lp(n, sense, &seed_c[..n], &rows, cap);
        let sparse = solve(&lp);
        let dense = solve_dense(&lp);
        prop_assert_eq!(sparse.status, dense.status, "status divergence");
        if sparse.status == LpStatus::Optimal {
            prop_assert_eq!(
                sparse.objective.clone().unwrap(),
                dense.objective.clone().unwrap(),
                "objective divergence"
            );
            // Both returned points must be feasible for the original LP.
            prop_assert!(lp.check_feasible(&sparse.values).is_ok());
            prop_assert!(lp.check_feasible(&dense.values).is_ok());
        }
    }

    #[test]
    fn warm_start_chain_agrees_with_cold(
        n in 1usize..4,
        maximize in any::<bool>(),
        seed_c in proptest::collection::vec(-4i64..=4, 3),
        seed_a in proptest::collection::vec(-3i64..=5, 9),
        seed_rel in proptest::collection::vec(0u8..=3, 3),
        rhs_walk in proptest::collection::vec(-2i64..=12, 4),
        cap in 1i64..=20,
    ) {
        // Re-solve the same structure under a walking RHS, threading the
        // warm basis through; every warm answer must equal the cold one.
        let sense = if maximize { Sense::Maximize } else { Sense::Minimize };
        let m = 2usize;
        let mut basis = None;
        for rhs in &rhs_walk {
            let rows: Vec<(Vec<i64>, u8, i64)> = (0..m)
                .map(|i| {
                    (
                        (0..n).map(|j| seed_a[(i * 3 + j) % 9]).collect(),
                        seed_rel[i % 3],
                        *rhs + i as i64,
                    )
                })
                .collect();
            let lp = build_rat_lp(n, sense, &seed_c[..n], &rows, cap);
            let warm = solve_warm(&lp, basis.as_ref());
            let cold = solve(&lp);
            prop_assert_eq!(warm.solution.status, cold.status);
            if cold.status == LpStatus::Optimal {
                prop_assert_eq!(warm.solution.objective.clone(), cold.objective.clone());
                prop_assert!(lp.check_feasible(&warm.solution.values).is_ok());
            }
            basis = warm.basis;
        }
    }
}
