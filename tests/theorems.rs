//! Cross-crate integration tests of the paper's theorems on batteries of
//! random and structured instances.

use dlflow::core::baselines::{baseline_max_weighted_flow, ListOrder};
use dlflow::core::instance::{Instance, InstanceBuilder};
use dlflow::core::makespan::{makespan_lower_bound, min_makespan};
use dlflow::core::maxflow::{
    feasible_at, min_max_weighted_flow_divisible, min_max_weighted_flow_preemptive,
};
use dlflow::core::milestones::{milestone_bound, milestones};
use dlflow::core::validate::{validate, validate_with_objective};
use dlflow::num::{Rat, Scalar};
use dlflow::sim::workload::{generate, WorkloadSpec};

/// Random f64 instance converted to exact rationals.
fn random_exact(seed: u64, n_jobs: usize, n_machines: usize) -> Instance<Rat> {
    let spec = WorkloadSpec {
        n_jobs,
        n_machines,
        mean_interarrival: 2.0,
        cost_range: (1.0, 10.0),
        heterogeneity: 3.0,
        availability: 0.7,
        weights: vec![1.0, 2.0, 5.0],
        seed,
    };
    // Round to rationals with small denominators to keep exact LPs fast.
    generate(&spec).map_scalar(|v| Rat::from_ratio((v * 16.0).round() as i64, 16))
}

#[test]
fn theorem1_makespan_dominates_lower_bound_and_schedules_validate() {
    for seed in 0..6 {
        let inst = random_exact(seed, 4, 2);
        let out = min_makespan(&inst);
        validate(&inst, &out.schedule).unwrap();
        assert_eq!(out.schedule.makespan(), out.makespan, "seed {seed}");
        assert!(makespan_lower_bound(&inst) <= out.makespan, "seed {seed}");
    }
}

#[test]
fn theorem2_optimum_is_tight_and_achieved() {
    for seed in 0..6 {
        let inst = random_exact(seed, 4, 2);
        let out = min_max_weighted_flow_divisible(&inst);
        // (a) the schedule is valid and achieves the claimed optimum;
        validate_with_objective(&inst, &out.schedule, &out.optimum).unwrap();
        assert_eq!(
            out.schedule.max_weighted_flow(&inst),
            out.optimum,
            "seed {seed}"
        );
        // (b) the optimum really is a lower bound: slightly below is infeasible;
        let below = out.optimum.mul(&Rat::from_ratio(9999, 10000));
        if below.is_positive() {
            assert!(
                !feasible_at(&inst, &below, false),
                "seed {seed}: {below} feasible below optimum"
            );
        }
        // (c) at the optimum itself it is feasible;
        assert!(feasible_at(&inst, &out.optimum, false), "seed {seed}");
        // (d) milestone count within the paper's n²−n bound.
        assert!(
            out.stats.n_milestones <= milestone_bound(inst.n_jobs()),
            "seed {seed}"
        );
    }
}

#[test]
fn execution_model_chain_divisible_preemptive_baseline() {
    for seed in 10..16 {
        let inst = random_exact(seed, 4, 2);
        let div = min_max_weighted_flow_divisible(&inst);
        let pre = min_max_weighted_flow_preemptive(&inst);
        let fifo = baseline_max_weighted_flow(&inst, ListOrder::ReleaseDate);
        assert!(
            div.optimum <= pre.optimum,
            "seed {seed}: divisible > preemptive"
        );
        assert!(
            pre.optimum <= fifo,
            "seed {seed}: preemptive > FIFO baseline"
        );
        validate(&inst, &div.schedule).unwrap();
        validate(&inst, &pre.schedule).unwrap();
        // Preemptive schedules must respect single-machine execution,
        // which `validate` checks because of the schedule kind.
        assert_eq!(
            pre.schedule.max_weighted_flow(&inst),
            pre.optimum,
            "seed {seed}"
        );
    }
}

#[test]
fn feasibility_is_monotone_in_objective() {
    let inst = random_exact(3, 4, 2);
    let out = min_max_weighted_flow_divisible(&inst);
    let probes = [
        out.optimum.mul(&Rat::from_ratio(1, 2)),
        out.optimum.mul(&Rat::from_ratio(999, 1000)),
        out.optimum.clone(),
        out.optimum.mul(&Rat::from_ratio(1001, 1000)),
        out.optimum.mul(&Rat::from_i64(2)),
    ];
    let results: Vec<bool> = probes
        .iter()
        .map(|f| feasible_at(&inst, f, false))
        .collect();
    // Once feasible, always feasible.
    for w in results.windows(2) {
        assert!(w[1] || !w[0], "feasibility must be monotone: {results:?}");
    }
    assert!(results[2], "optimum itself must be feasible");
}

#[test]
fn stretch_weighting_single_job_is_one() {
    let mut b = InstanceBuilder::<Rat>::new();
    b.job(Rat::zero(), Rat::one());
    b.machine(vec![Some(Rat::from_i64(7))]);
    let inst = b.build().unwrap();
    let out = dlflow::core::maxflow::min_max_stretch_divisible(&inst);
    assert_eq!(out.optimum, Rat::one());
}

#[test]
fn weighted_flow_generalizes_makespan_when_single_release() {
    // With all releases 0 and unit weights, max weighted flow == makespan.
    let mut b = InstanceBuilder::<Rat>::new();
    b.job(Rat::zero(), Rat::one());
    b.job(Rat::zero(), Rat::one());
    b.machine(vec![Some(Rat::from_i64(4)), Some(Rat::from_i64(2))]);
    b.machine(vec![Some(Rat::from_i64(4)), Some(Rat::from_i64(6))]);
    let inst = b.build().unwrap();
    let mk = min_makespan(&inst);
    let fl = min_max_weighted_flow_divisible(&inst);
    assert_eq!(mk.makespan, fl.optimum);
}

#[test]
fn milestones_respect_paper_bound_at_scale() {
    for n in [2usize, 4, 6, 8] {
        let inst = random_exact(n as u64, n, 3);
        let ms = milestones(&inst);
        assert!(
            ms.len() <= milestone_bound(n),
            "n = {n}: {} > {}",
            ms.len(),
            milestone_bound(n)
        );
    }
}

#[test]
fn f64_and_exact_pipelines_agree() {
    for seed in 20..24 {
        let exact_inst = random_exact(seed, 3, 2);
        let f64_inst = exact_inst.map_scalar(|v| v.to_f64());
        let e = min_max_weighted_flow_divisible(&exact_inst);
        let f = min_max_weighted_flow_divisible(&f64_inst);
        let rel = (f.optimum - e.optimum.to_f64()).abs() / e.optimum.to_f64().max(1e-12);
        assert!(
            rel < 1e-6,
            "seed {seed}: f64 {} vs exact {}",
            f.optimum,
            e.optimum
        );
    }
}
