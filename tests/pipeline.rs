//! End-to-end pipeline: GriPPS application model → platform instance →
//! offline optimum → online simulation, all cross-checked.

use dlflow::core::maxflow::min_max_weighted_flow_divisible;
use dlflow::core::validate::validate;
use dlflow::gripps::motif::Motif;
use dlflow::gripps::scan::{invoke, scan_databank};
use dlflow::gripps::{random_requests, CostModel, Databank, DatabankSpec, PlatformSpec};
use dlflow::sim::engine::{simulate, RunMetrics};
use dlflow::sim::schedulers::{Mct, OfflineAdapt};

#[test]
fn gripps_platform_to_offline_optimum() {
    let platform = PlatformSpec::random(3, 4, 2.5, 77);
    let requests = random_requests(&platform, 6, 60.0, 5);
    let inst = platform
        .instance(&requests, &CostModel::paper_scale())
        .unwrap();
    assert_eq!(inst.n_jobs(), 6);

    let out = min_max_weighted_flow_divisible(&inst);
    validate(&inst, &out.schedule).unwrap();
    assert!(out.optimum > 0.0);
    let realized = out.schedule.max_weighted_flow(&inst);
    assert!((realized - out.optimum).abs() < 1e-6 * out.optimum.max(1.0));
}

#[test]
fn online_policies_bounded_by_offline_optimum() {
    let platform = PlatformSpec::random(3, 4, 2.5, 101);
    let requests = random_requests(&platform, 5, 80.0, 3);
    let inst = platform
        .instance(&requests, &CostModel::paper_scale())
        .unwrap();
    let offline = min_max_weighted_flow_divisible(&inst);

    for policy in [
        &mut Mct::new() as &mut dyn dlflow::sim::OnlineScheduler,
        &mut OfflineAdapt::new(),
    ] {
        let res = simulate(&inst, policy).unwrap();
        let m = RunMetrics::from_completions(&inst, &res.completions);
        assert!(
            m.max_weighted_flow >= offline.optimum * (1.0 - 1e-4),
            "{}: online {} beat offline optimum {}",
            policy.name(),
            m.max_weighted_flow,
            offline.optimum
        );
    }
}

#[test]
fn ola_tracks_offline_optimum_closely() {
    // On a stream with gaps between arrivals, OLA should be near-optimal.
    let platform = PlatformSpec::random(2, 3, 2.0, 55);
    let requests = random_requests(&platform, 4, 200.0, 9);
    let inst = platform
        .instance(&requests, &CostModel::paper_scale())
        .unwrap();
    let offline = min_max_weighted_flow_divisible(&inst);
    let res = simulate(&inst, &mut OfflineAdapt::new()).unwrap();
    let m = RunMetrics::from_completions(&inst, &res.completions);
    assert!(
        m.max_weighted_flow <= offline.optimum * 1.25 + 1e-6,
        "OLA {} vs offline {}",
        m.max_weighted_flow,
        offline.optimum
    );
}

#[test]
fn scan_work_is_the_instance_cost_driver() {
    // The cost the scheduler sees must be proportional to the work the
    // scanner actually performs (nominal work units).
    let bank = Databank::generate(&DatabankSpec {
        n_sequences: 120,
        mean_len: 120,
        min_len: 30,
        seed: 4,
    });
    let motifs = Motif::random_set(6, 5, 8);
    let full = scan_databank(&bank, &motifs);
    let half_bank = bank.random_subset(60, 2);
    let half = scan_databank(&half_bank, &motifs);
    let work_ratio = half.work_units as f64 / full.work_units as f64;
    let residue_ratio = half_bank.total_residues() as f64 / bank.total_residues() as f64;
    assert!((work_ratio - residue_ratio).abs() < 1e-12);
}

#[test]
fn invocation_roundtrip_through_fasta() {
    let bank = Databank::generate(&DatabankSpec {
        n_sequences: 30,
        mean_len: 80,
        min_len: 20,
        seed: 12,
    });
    let fasta = bank.to_fasta();
    let motifs = Motif::random_set(3, 5, 21);
    let sources: Vec<String> = motifs.iter().map(|m| m.source.clone()).collect();
    let source_refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let via_invoke = invoke(&fasta, &source_refs).unwrap();
    let direct = scan_databank(&bank, &motifs);
    assert_eq!(via_invoke.matches, direct.matches);
    assert_eq!(via_invoke.work_units, direct.work_units);
}

#[test]
fn cost_model_drives_realistic_instances() {
    // Instance costs must scale with databank size and motif count.
    let platform = PlatformSpec {
        servers: vec![dlflow::gripps::ServerSpec {
            cycle_time: 1.0,
            databanks: vec![0, 1],
        }],
        databank_residues: vec![1.0e6, 2.0e6],
    };
    let model = CostModel::paper_scale();
    let reqs = vec![
        dlflow::gripps::Request {
            databank: 0,
            n_motifs: 100.0,
            release: 0.0,
            weight: 1.0,
        },
        dlflow::gripps::Request {
            databank: 1,
            n_motifs: 100.0,
            release: 0.0,
            weight: 1.0,
        },
        dlflow::gripps::Request {
            databank: 0,
            n_motifs: 200.0,
            release: 0.0,
            weight: 1.0,
        },
    ];
    let inst = platform.instance(&reqs, &model).unwrap();
    let c0 = *inst.cost(0, 0).finite().unwrap();
    let c1 = *inst.cost(0, 1).finite().unwrap();
    let c2 = *inst.cost(0, 2).finite().unwrap();
    assert!((c1 / c0 - 2.0).abs() < 1e-9, "2x databank ⇒ 2x cost");
    assert!((c2 / c0 - 2.0).abs() < 1e-9, "2x motifs ⇒ 2x cost");
}
